// Tests for the mini-C lexer, parser, and semantic analysis.
#include <gtest/gtest.h>

#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"

namespace esv::minic {
namespace {

// --- lexer -------------------------------------------------------------------

TEST(LexerTest, TokenizesBasicProgram) {
  const auto toks = tokenize("int x = 42;");
  ASSERT_EQ(toks.size(), 6u);  // int x = 42 ; <end>
  EXPECT_EQ(toks[0].kind, Tok::kInt);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].kind, Tok::kAssign);
  EXPECT_EQ(toks[3].kind, Tok::kNumber);
  EXPECT_EQ(toks[3].number, 42);
  EXPECT_EQ(toks[4].kind, Tok::kSemi);
  EXPECT_EQ(toks[5].kind, Tok::kEnd);
}

TEST(LexerTest, HexLiterals) {
  const auto toks = tokenize("0xFF 0x1000");
  EXPECT_EQ(toks[0].number, 255);
  EXPECT_EQ(toks[1].number, 0x1000);
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto toks = tokenize("a // comment\nb /* multi\nline */ c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
  EXPECT_EQ(toks[2].line, 3);  // line tracking across the block comment
}

TEST(LexerTest, TwoCharOperators) {
  const auto toks = tokenize("&& || << >> <= >= == != ++ -- += -=");
  EXPECT_EQ(toks[0].kind, Tok::kAmpAmp);
  EXPECT_EQ(toks[1].kind, Tok::kPipePipe);
  EXPECT_EQ(toks[2].kind, Tok::kShl);
  EXPECT_EQ(toks[3].kind, Tok::kShr);
  EXPECT_EQ(toks[4].kind, Tok::kLe);
  EXPECT_EQ(toks[5].kind, Tok::kGe);
  EXPECT_EQ(toks[6].kind, Tok::kEqEq);
  EXPECT_EQ(toks[7].kind, Tok::kNe);
  EXPECT_EQ(toks[8].kind, Tok::kPlusPlus);
  EXPECT_EQ(toks[9].kind, Tok::kMinusMinus);
  EXPECT_EQ(toks[10].kind, Tok::kPlusAssign);
  EXPECT_EQ(toks[11].kind, Tok::kMinusAssign);
}

TEST(LexerTest, Errors) {
  EXPECT_THROW(tokenize("@"), LexError);
  EXPECT_THROW(tokenize("0x"), LexError);
  EXPECT_THROW(tokenize("123abc"), LexError);
  EXPECT_THROW(tokenize("/* unterminated"), LexError);
}

// --- parser ------------------------------------------------------------------

TEST(ParserTest2, ParsesGlobalsAndEnums) {
  Program p = parse_program(R"(
    enum { OK = 0, BUSY = 5, ERROR };
    int counter;
    unsigned addr = 0x100;
    int table[4] = {1, 2, 3, 4};
    void main(void) {}
  )");
  ASSERT_EQ(p.globals.size(), 3u);
  EXPECT_EQ(p.globals[0].name, "counter");
  EXPECT_EQ(p.globals[1].init.at(0), 0x100);
  EXPECT_TRUE(p.globals[2].is_array);
  EXPECT_EQ(p.globals[2].words, 4u);
  ASSERT_EQ(p.enum_constants.size(), 3u);
  EXPECT_EQ(p.enum_constants[1].second, 5);
  EXPECT_EQ(p.enum_constants[2].second, 6);  // auto-increments after BUSY
}

TEST(ParserTest2, ParsesControlFlow) {
  Program p = parse_program(R"(
    void main(void) {
      int i;
      for (i = 0; i < 10; i++) {
        if (i == 5) break; else continue;
      }
      while (i > 0) { i--; }
      do { i += 2; } while (i < 4);
      switch (i) {
        case 0: i = 1; break;
        case 1:
        case 2: i = 3; break;
        default: i = 9;
      }
    }
  )");
  ASSERT_EQ(p.functions.size(), 1u);
  const auto& body = p.functions[0]->body;
  EXPECT_EQ(body[1]->kind, Stmt::Kind::kFor);
  EXPECT_EQ(body[2]->kind, Stmt::Kind::kWhile);
  EXPECT_EQ(body[3]->kind, Stmt::Kind::kDoWhile);
  EXPECT_EQ(body[4]->kind, Stmt::Kind::kSwitch);
  EXPECT_EQ(body[4]->cases.size(), 4u);
  EXPECT_TRUE(body[4]->cases[3].is_default);
  EXPECT_TRUE(body[4]->cases[1].body.empty());  // fallthrough label
}

TEST(ParserTest2, ParsesMemoryAccessAndInput) {
  Program p = parse_program(R"(
    unsigned status;
    void main(void) {
      status = *(0xF0000004);
      *(0xF0000000) = 1;
      status = __in(cmd);
    }
  )");
  const auto& body = p.functions[0]->body;
  EXPECT_EQ(body[0]->expr->kind, Expr::Kind::kMemRead);
  EXPECT_EQ(body[1]->target->kind, Expr::Kind::kMemRead);
  EXPECT_EQ(body[2]->expr->kind, Expr::Kind::kInput);
  EXPECT_EQ(body[2]->expr->name, "cmd");
}

TEST(ParserTest2, DesugarsCompoundAssignment) {
  Program p = parse_program("int x; void main(void) { x += 3; x++; }");
  const auto& body = p.functions[0]->body;
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(body[0]->kind, Stmt::Kind::kAssign);
  EXPECT_EQ(body[0]->expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(body[0]->expr->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(body[1]->expr->binary_op, BinaryOp::kAdd);
}

TEST(ParserTest2, OperatorPrecedence) {
  Program p = parse_program("int x; void main(void) { x = 1 + 2 * 3; }");
  const Expr& e = *p.functions[0]->body[0]->expr;
  EXPECT_EQ(e.binary_op, BinaryOp::kAdd);
  EXPECT_EQ(e.children[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest2, TernaryExpression) {
  Program p = parse_program("int x; void main(void) { x = x > 0 ? 1 : 2; }");
  EXPECT_EQ(p.functions[0]->body[0]->expr->kind, Expr::Kind::kTernary);
}

TEST(ParserTest2, Errors) {
  EXPECT_THROW(parse_program("int;"), ParseError);
  EXPECT_THROW(parse_program("void main(void) { 1 = 2; }"), ParseError);
  EXPECT_THROW(parse_program("void main(void) { if 1 {} }"), ParseError);
  EXPECT_THROW(parse_program("void main(void) { return 1 }"), ParseError);
  EXPECT_THROW(parse_program("int f(void x) {}"), ParseError);
  EXPECT_THROW(parse_program("int a[0];"), ParseError);
  EXPECT_THROW(parse_program("void main(void) { switch (1) { foo; } }"),
               ParseError);
  EXPECT_THROW(parse_program(
                   "void main(void) { switch (1) { default: break; default: break; } }"),
               ParseError);
}

// --- sema --------------------------------------------------------------------

TEST(SemaTest, LayoutAssignsAddresses) {
  Program p = compile(R"(
    int a;
    int arr[3];
    int b;
    void main(void) {}
  )");
  // fname is injected first at the globals base.
  EXPECT_EQ(p.fname_address, Program::kGlobalsBase);
  EXPECT_EQ(p.find_global("a")->address, Program::kGlobalsBase + 4);
  EXPECT_EQ(p.find_global("arr")->address, Program::kGlobalsBase + 8);
  EXPECT_EQ(p.find_global("b")->address, Program::kGlobalsBase + 20);
  EXPECT_EQ(p.data_segment_end(), Program::kGlobalsBase + 24);
}

TEST(SemaTest, ResolvesReferences) {
  Program p = compile(R"(
    enum { LIMIT = 7 };
    int g;
    int add(int x, int y) { return x + y; }
    void main(void) {
      int local = LIMIT;
      g = add(local, g);
    }
  )");
  const auto& main_body = p.functions[1]->body;
  // local = LIMIT: init expr resolved as constant.
  EXPECT_EQ(main_body[0]->expr->ref, RefKind::kConst);
  EXPECT_EQ(main_body[0]->expr->value, 7);
  // g = add(local, g)
  EXPECT_EQ(main_body[1]->target->ref, RefKind::kGlobal);
  const Expr& call = *main_body[1]->expr;
  EXPECT_EQ(call.callee, p.find_function("add"));
  EXPECT_EQ(call.children[0]->ref, RefKind::kLocal);
  EXPECT_EQ(call.children[1]->ref, RefKind::kGlobal);
}

TEST(SemaTest, FunctionIndicesAndFnameIds) {
  Program p = compile(R"(
    void helper(void) {}
    void main(void) { helper(); }
  )");
  EXPECT_EQ(p.fname_id("helper"), 1u);
  EXPECT_EQ(p.fname_id("main"), 2u);
  EXPECT_EQ(p.fname_id("missing"), 0u);
}

TEST(SemaTest, InputIdsAreDense) {
  Program p = compile(R"(
    int a; int b;
    void main(void) { a = __in(x); b = __in(y); a = __in(x); }
  )");
  ASSERT_EQ(p.input_names.size(), 2u);
  EXPECT_EQ(p.input_names[0], "x");
  EXPECT_EQ(p.input_names[1], "y");
  EXPECT_EQ(p.functions[0]->body[2]->expr->input_id, 0);
}

TEST(SemaTest, ScopedLocalsReuseSlots) {
  Program p = compile(R"(
    void main(void) {
      { int a; a = 1; }
      { int b; b = 2; }
    }
  )");
  EXPECT_EQ(p.functions[0]->max_slots, 1);  // a and b share slot 0
}

TEST(SemaTest, ParamsGetSlots) {
  Program p = compile("int f(int a, int b) { int c; c = a; return b + c; } "
                      "void main(void) { f(1, 2); }");
  EXPECT_EQ(p.functions[0]->max_slots, 3);
}

TEST(SemaTest, Rejections) {
  EXPECT_THROW(compile("void main(void) { x = 1; }"), SemaError);
  EXPECT_THROW(compile("int x; int x; void main(void) {}"), SemaError);
  EXPECT_THROW(compile("void f(void) {} void f(void) {} void main(void) {}"),
               SemaError);
  EXPECT_THROW(compile("void main(void) { break; }"), SemaError);
  EXPECT_THROW(compile("void main(void) { continue; }"), SemaError);
  EXPECT_THROW(compile("int f(void) { return; } void main(void) {}"),
               SemaError);
  EXPECT_THROW(compile("void f(void) { return 1; } void main(void) {}"),
               SemaError);
  EXPECT_THROW(compile("void f(void) {} void main(void) { int x = f(); }"),
               SemaError);
  EXPECT_THROW(compile("void f(int a) {} void main(void) { f(); }"),
               SemaError);
  EXPECT_THROW(compile("int a[3]; void main(void) { a = 1; }"), SemaError);
  EXPECT_THROW(compile("int a; void main(void) { a[0] = 1; }"), SemaError);
  EXPECT_THROW(compile("int a[3]; void main(void) { int x = a; }"), SemaError);
  EXPECT_THROW(compile("enum { K = 1 }; void main(void) { K = 2; }"),
               SemaError);
  EXPECT_THROW(compile("enum { K = 1 }; int K; void main(void) {}"),
               SemaError);
  EXPECT_THROW(compile("int g;"), SemaError);                 // no main
  EXPECT_THROW(compile("void main(int x) {}"), SemaError);    // main params
  EXPECT_THROW(compile("void main(void) { int a; int a; }"), SemaError);
}

TEST(SemaTest, UserDeclaredFnameIsReused) {
  Program p = compile("int fname; void main(void) {}");
  EXPECT_EQ(p.find_global("fname")->address, p.fname_address);
  // No duplicate got injected.
  int count = 0;
  for (const auto& g : p.globals) {
    if (g.name == "fname") ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(SemaTest, SwitchCaseWithEnumLabels) {
  Program p = compile(R"(
    enum { A = 10, B = 20 };
    int s;
    void main(void) {
      switch (s) {
        case A: s = 1; break;
        case B: s = 2; break;
      }
    }
  )");
  EXPECT_EQ(p.functions[0]->body[0]->cases[0].value, 10);
  EXPECT_EQ(p.functions[0]->body[0]->cases[1].value, 20);
}

}  // namespace
}  // namespace esv::minic

// Differential fuzzing: random mini-C programs executed on both platforms
// (compiled to the microprocessor vs interpreted as the derived ESW model)
// must produce identical global state. This is the strongest correctness
// argument for "the derived model is as precise as the original C program".
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "cpu/codegen.hpp"
#include "cpu/cpu.hpp"
#include "esw/esw_model.hpp"
#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "minic/sema.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sctc/checker.hpp"

namespace esv {
namespace {

/// Generates a random terminating mini-C program. Loops are canonical
/// counted `for` loops whose induction variable is never touched inside the
/// body, so every generated program terminates. Divisions force a non-zero
/// divisor with `| 1`; shift counts are small constants.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    globals_ = 4 + static_cast<int>(rng_.next_below(5));
    std::string out;
    for (int i = 0; i < globals_; ++i) {
      out += "int g" + std::to_string(i) + " = " +
             std::to_string(rng_.next_in_range(-50, 50)) + ";\n";
    }
    // A couple of helper functions main can call.
    helpers_ = static_cast<int>(rng_.next_below(3));
    for (int f = 0; f < helpers_; ++f) {
      // Helper bodies are call-free so generated call graphs cannot recurse.
      out += "int h" + std::to_string(f) + "(int a, int b) {\n";
      out += "  int t = " + expr(2, false) + ";\n";
      out += "  if (" + expr(1, false) +
             " > a) { t = t + b; } else { t = t - a; }\n";
      out += "  return t;\n";
      out += "}\n";
    }
    out += "void main(void) {\n";
    locals_ = 0;
    const int statements = 4 + static_cast<int>(rng_.next_below(8));
    for (int i = 0; i < statements; ++i) out += stmt(2);
    out += "}\n";
    return out;
  }

 private:
  std::string var() {
    return "g" + std::to_string(rng_.next_below(
                     static_cast<std::uint64_t>(globals_)));
  }

  /// `allow_call`: the C2SystemC derivation rejects calls inside ?: branches
  /// (and short-circuit right sides), so the generator avoids them there.
  std::string expr(int depth, bool allow_call = true) {
    if (depth == 0 || rng_.next_chance(1, 3)) {
      switch (rng_.next_below(3)) {
        case 0:
          // Parenthesized: "a - -77" would otherwise lex as "a -- 77".
          return "(" + std::to_string(rng_.next_in_range(-100, 100)) + ")";
        case 1: return var();
        default:
          return "(" + std::to_string(rng_.next_in_range(0, 30)) + ")";
      }
    }
    const char* ops[] = {"+", "-", "*", "&", "|", "^",
                         "<", "<=", "==", "!=", ">", ">="};
    switch (rng_.next_below(6)) {
      case 0:
        return "(" + expr(depth - 1, allow_call) + " " +
               ops[rng_.next_below(12)] + " " + expr(depth - 1, allow_call) +
               ")";
      case 1:
        return "(" + expr(depth - 1, allow_call) + " / (" +
               expr(depth - 1, allow_call) + " | 1))";
      case 2:
        return "(" + expr(depth - 1, allow_call) + " % (" +
               expr(depth - 1, allow_call) + " | 1))";
      case 3:
        return "(" + expr(depth - 1, allow_call) + " << " +
               std::to_string(rng_.next_below(5)) + ")";
      case 4:
        if (helpers_ > 0 && allow_call) {
          return "h" +
                 std::to_string(rng_.next_below(
                     static_cast<std::uint64_t>(helpers_))) +
                 "(" + expr(depth - 1, allow_call) + ", " +
                 expr(depth - 1, allow_call) + ")";
        }
        return "(-" + expr(depth - 1, allow_call) + ")";
      default:
        return "(" + expr(depth - 1, allow_call) + " ? " +
               expr(depth - 1, false) + " : " + expr(depth - 1, false) + ")";
    }
  }

  std::string stmt(int depth) {
    if (depth == 0 || rng_.next_chance(1, 2)) {
      return "  " + var() + " = " + expr(2) + ";\n";
    }
    switch (rng_.next_below(3)) {
      case 0:
        return "  if (" + expr(2) + ") {\n  " + stmt(depth - 1) +
               "  } else {\n  " + stmt(depth - 1) + "  }\n";
      case 1: {
        const std::string i = "i" + std::to_string(locals_++);
        const std::string n = std::to_string(1 + rng_.next_below(8));
        return "  { int " + i + "; for (" + i + " = 0; " + i + " < " + n +
               "; " + i + "++) {\n  " + stmt(depth - 1) + "  } }\n";
      }
      default: {
        std::string s = "  switch (" + var() + " & 3) {\n";
        s += "    case 0: " + var() + " = " + expr(1) + "; break;\n";
        s += "    case 1:\n";  // fallthrough
        s += "    case 2: " + var() + " = " + expr(1) + "; break;\n";
        s += "    default: " + var() + " = " + expr(1) + ";\n  }\n";
        return s;
      }
    }
  }

  common::Rng rng_;
  int globals_ = 0;
  int helpers_ = 0;
  int locals_ = 0;
};

class DifferentialFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzzTest, CpuAndDerivedModelAgree) {
  ProgramGenerator gen(static_cast<std::uint64_t>(GetParam()) * 0xABCDEF);
  const std::string source = gen.generate();
  SCOPED_TRACE(source);

  minic::Program program_a = minic::compile(source);
  minic::Program program_b = minic::compile(source);

  // Reference: derived-model interpreter.
  esw::EswProgram lowered = esw::lower_program(program_a);
  mem::AddressSpace mem_a(0x10000);
  minic::ZeroInputProvider in_a;
  esw::Interpreter interp(program_a, lowered, mem_a, in_a);
  interp.run(2'000'000);
  ASSERT_TRUE(interp.finished());

  // Subject: the microprocessor.
  cpu::CodeImage image = cpu::compile_to_image(program_b);
  sim::Simulation sim;
  mem::AddressSpace mem_b(0x10000);
  minic::ZeroInputProvider in_b;
  sim::Clock clock(sim, "clk", sim::Time::ns(10));
  cpu::Cpu core(sim, "cpu", image, mem_b, in_b, clock);
  core.set_stop_on_halt(true);
  sim.run(sim::Time::sec(1));
  ASSERT_TRUE(core.halted());
  ASSERT_FALSE(core.trapped()) << core.trap_message();

  for (const auto& g : program_a.globals) {
    EXPECT_EQ(mem_b.sctc_read_uint(g.address), interp.global(g.name))
        << "global " << g.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTest, ::testing::Range(0, 40));

/// Monitor-transition events pulled out of a JSONL trace, with step numbers
/// dropped: approach 1 steps per clock cycle and approach 2 per statement,
/// so only the (property, verdict) content of a transition is comparable.
std::vector<std::string> transition_events(const std::string& jsonl) {
  std::vector<std::string> events;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"monitor_transition\"") == std::string::npos) {
      continue;
    }
    const std::size_t property = line.find("\"property\"");
    events.push_back(line.substr(property));
  }
  return events;
}

struct CheckedRun {
  std::vector<std::string> transitions;
  std::uint64_t transition_count = 0;  // the sctc.monitor_transitions counter
};

/// Runs `source` to completion under the given approach with monitors for
/// two clock-free properties per watched global: `F (g == final)` (reaches
/// its known final value) and `G (g == initial)` (never changes). Clock-free
/// (untimed) properties are stutter-invariant, so the per-cycle and
/// per-statement samplings must drive the monitors through the same
/// transitions.
CheckedRun run_checked(const std::string& source, int approach,
                       const std::vector<std::pair<std::string, std::uint32_t>>&
                           final_values,
                       sctc::MonitorMode mode = sctc::MonitorMode::kProgression) {
  minic::Program program = minic::compile(source);
  sim::Simulation sim;
  mem::AddressSpace memory(0x10000);
  minic::ZeroInputProvider inputs;

  sctc::TemporalChecker checker(sim, "sctc", mode);
  obs::MetricsRegistry metrics;
  obs::TraceWriter trace;
  checker.set_metrics(&metrics);
  checker.set_trace(&trace);

  for (const auto& [name, final_value] : final_values) {
    const minic::GlobalVar* global = program.find_global(name);
    const std::uint32_t address = global->address;
    const std::uint32_t initial = static_cast<std::uint32_t>(
        global->init.empty() ? 0 : global->init[0]);
    checker.register_proposition(name + "_final",
                                 [&memory, address, final_value] {
                                   return memory.sctc_read_uint(address) ==
                                          final_value;
                                 });
    checker.register_proposition(name + "_initial",
                                 [&memory, address, initial] {
                                   return memory.sctc_read_uint(address) ==
                                          initial;
                                 });
    checker.add_property("reaches_" + name, "F " + name + "_final");
    checker.add_property("holds_" + name, "G " + name + "_initial");
  }

  if (approach == 2) {
    esw::EswProgram lowered = esw::lower_program(program);
    esw::EswModel model(sim, "esw", program, lowered, memory, inputs);
    checker.bind_trigger(model.pc_event());
    sim.create_method(
        "supervisor", [&] { if (model.finished()) sim.stop(); },
        {&model.pc_event()}, /*run_at_start=*/false);
    // The microprocessor's clock samples the pre-main initial state (the
    // first posedge fires before any store retires); the pc event only
    // fires after the first statement. One manual step aligns the observed
    // state sequences, which stutter-invariance then keeps aligned.
    checker.step_all();
    sim.run();
    EXPECT_TRUE(model.finished());
  } else {
    cpu::CodeImage image = cpu::compile_to_image(program);
    sim::Clock clock(sim, "clk", sim::Time::ns(10));
    cpu::Cpu core(sim, "cpu", image, memory, inputs, clock);
    core.set_stop_on_halt(true);
    checker.bind_trigger(clock.posedge_event());
    sim.run(sim::Time::sec(1));
    EXPECT_TRUE(core.halted());
    EXPECT_FALSE(core.trapped()) << core.trap_message();
  }

  // In `both` mode the compiled fast path shadows the interpreted oracle
  // for the whole run; any disagreement is a test failure right here.
  EXPECT_EQ(checker.divergence_count(), 0u)
      << (checker.divergence_count() != 0 ? checker.divergences()[0] : "");

  CheckedRun result;
  result.transitions = transition_events(trace.text());
  result.transition_count =
      metrics.snapshot().counters.at("sctc.monitor_transitions");
  return result;
}

TEST_P(DifferentialFuzzTest, MonitorTransitionCountsAgree) {
  ProgramGenerator gen(static_cast<std::uint64_t>(GetParam()) * 0xFEDCBA);
  const std::string source = gen.generate();
  SCOPED_TRACE(source);

  // Reference interpreter run fixes the final values the F-properties watch.
  minic::Program program = minic::compile(source);
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(0x10000);
  minic::ZeroInputProvider inputs;
  esw::Interpreter interp(program, lowered, memory, inputs);
  interp.run(2'000'000);
  ASSERT_TRUE(interp.finished());

  std::vector<std::pair<std::string, std::uint32_t>> final_values;
  for (std::size_t i = 0; i < program.globals.size() && i < 3; ++i) {
    const std::string& name = program.globals[i].name;
    final_values.emplace_back(name, interp.global(name));
  }
  ASSERT_FALSE(final_values.empty());

  const CheckedRun derived = run_checked(source, 2, final_values);
  const CheckedRun micro = run_checked(source, 1, final_values);

  // The tracer is the oracle: both approaches take the same monitor
  // transitions (same properties, same verdicts, same multiplicity), and
  // the metrics counter agrees with the traced event count.
  EXPECT_EQ(derived.transitions, micro.transitions);
  EXPECT_EQ(derived.transition_count, micro.transition_count);
  EXPECT_EQ(derived.transition_count, derived.transitions.size());
  // Every watched global reaches its final value, so the F-properties fire
  // at least once per run.
  EXPECT_GE(derived.transition_count, final_values.size());
}

TEST_P(DifferentialFuzzTest, MonitorModesAgreeAcrossApproaches) {
  ProgramGenerator gen(static_cast<std::uint64_t>(GetParam()) * 0x2B0DE);
  const std::string source = gen.generate();
  SCOPED_TRACE(source);

  minic::Program program = minic::compile(source);
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(0x10000);
  minic::ZeroInputProvider inputs;
  esw::Interpreter interp(program, lowered, memory, inputs);
  interp.run(2'000'000);
  ASSERT_TRUE(interp.finished());

  std::vector<std::pair<std::string, std::uint32_t>> final_values;
  for (std::size_t i = 0; i < program.globals.size() && i < 2; ++i) {
    const std::string& name = program.globals[i].name;
    final_values.emplace_back(name, interp.global(name));
  }
  ASSERT_FALSE(final_values.empty());

  // The full approach x monitor-mode matrix must take identical monitor
  // transitions: both platform samplings (per statement, per cycle) crossed
  // with the interpreted and the compiled monitor pipelines. `both` rides
  // along as the strongest cell — it cross-checks the two pipelines inside
  // a single run on top of comparing the traces.
  const CheckedRun reference =
      run_checked(source, 2, final_values, sctc::MonitorMode::kProgression);
  for (const int approach : {1, 2}) {
    for (const sctc::MonitorMode mode :
         {sctc::MonitorMode::kProgression, sctc::MonitorMode::kCompiled,
          sctc::MonitorMode::kBoth}) {
      if (approach == 2 && mode == sctc::MonitorMode::kProgression) {
        continue;  // that cell is the reference itself
      }
      SCOPED_TRACE(std::string("approach ") + std::to_string(approach) +
                   " mode " + sctc::monitor_mode_name(mode));
      const CheckedRun run = run_checked(source, approach, final_values, mode);
      EXPECT_EQ(run.transitions, reference.transitions);
      EXPECT_EQ(run.transition_count, reference.transition_count);
    }
  }
}

}  // namespace
}  // namespace esv

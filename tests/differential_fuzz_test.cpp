// Differential fuzzing: random mini-C programs executed on both platforms
// (compiled to the microprocessor vs interpreted as the derived ESW model)
// must produce identical global state. This is the strongest correctness
// argument for "the derived model is as precise as the original C program".
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "cpu/codegen.hpp"
#include "cpu/cpu.hpp"
#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "minic/sema.hpp"

namespace esv {
namespace {

/// Generates a random terminating mini-C program. Loops are canonical
/// counted `for` loops whose induction variable is never touched inside the
/// body, so every generated program terminates. Divisions force a non-zero
/// divisor with `| 1`; shift counts are small constants.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    globals_ = 4 + static_cast<int>(rng_.next_below(5));
    std::string out;
    for (int i = 0; i < globals_; ++i) {
      out += "int g" + std::to_string(i) + " = " +
             std::to_string(rng_.next_in_range(-50, 50)) + ";\n";
    }
    // A couple of helper functions main can call.
    helpers_ = static_cast<int>(rng_.next_below(3));
    for (int f = 0; f < helpers_; ++f) {
      // Helper bodies are call-free so generated call graphs cannot recurse.
      out += "int h" + std::to_string(f) + "(int a, int b) {\n";
      out += "  int t = " + expr(2, false) + ";\n";
      out += "  if (" + expr(1, false) +
             " > a) { t = t + b; } else { t = t - a; }\n";
      out += "  return t;\n";
      out += "}\n";
    }
    out += "void main(void) {\n";
    locals_ = 0;
    const int statements = 4 + static_cast<int>(rng_.next_below(8));
    for (int i = 0; i < statements; ++i) out += stmt(2);
    out += "}\n";
    return out;
  }

 private:
  std::string var() {
    return "g" + std::to_string(rng_.next_below(
                     static_cast<std::uint64_t>(globals_)));
  }

  /// `allow_call`: the C2SystemC derivation rejects calls inside ?: branches
  /// (and short-circuit right sides), so the generator avoids them there.
  std::string expr(int depth, bool allow_call = true) {
    if (depth == 0 || rng_.next_chance(1, 3)) {
      switch (rng_.next_below(3)) {
        case 0:
          // Parenthesized: "a - -77" would otherwise lex as "a -- 77".
          return "(" + std::to_string(rng_.next_in_range(-100, 100)) + ")";
        case 1: return var();
        default:
          return "(" + std::to_string(rng_.next_in_range(0, 30)) + ")";
      }
    }
    const char* ops[] = {"+", "-", "*", "&", "|", "^",
                         "<", "<=", "==", "!=", ">", ">="};
    switch (rng_.next_below(6)) {
      case 0:
        return "(" + expr(depth - 1, allow_call) + " " +
               ops[rng_.next_below(12)] + " " + expr(depth - 1, allow_call) +
               ")";
      case 1:
        return "(" + expr(depth - 1, allow_call) + " / (" +
               expr(depth - 1, allow_call) + " | 1))";
      case 2:
        return "(" + expr(depth - 1, allow_call) + " % (" +
               expr(depth - 1, allow_call) + " | 1))";
      case 3:
        return "(" + expr(depth - 1, allow_call) + " << " +
               std::to_string(rng_.next_below(5)) + ")";
      case 4:
        if (helpers_ > 0 && allow_call) {
          return "h" +
                 std::to_string(rng_.next_below(
                     static_cast<std::uint64_t>(helpers_))) +
                 "(" + expr(depth - 1, allow_call) + ", " +
                 expr(depth - 1, allow_call) + ")";
        }
        return "(-" + expr(depth - 1, allow_call) + ")";
      default:
        return "(" + expr(depth - 1, allow_call) + " ? " +
               expr(depth - 1, false) + " : " + expr(depth - 1, false) + ")";
    }
  }

  std::string stmt(int depth) {
    if (depth == 0 || rng_.next_chance(1, 2)) {
      return "  " + var() + " = " + expr(2) + ";\n";
    }
    switch (rng_.next_below(3)) {
      case 0:
        return "  if (" + expr(2) + ") {\n  " + stmt(depth - 1) +
               "  } else {\n  " + stmt(depth - 1) + "  }\n";
      case 1: {
        const std::string i = "i" + std::to_string(locals_++);
        const std::string n = std::to_string(1 + rng_.next_below(8));
        return "  { int " + i + "; for (" + i + " = 0; " + i + " < " + n +
               "; " + i + "++) {\n  " + stmt(depth - 1) + "  } }\n";
      }
      default: {
        std::string s = "  switch (" + var() + " & 3) {\n";
        s += "    case 0: " + var() + " = " + expr(1) + "; break;\n";
        s += "    case 1:\n";  // fallthrough
        s += "    case 2: " + var() + " = " + expr(1) + "; break;\n";
        s += "    default: " + var() + " = " + expr(1) + ";\n  }\n";
        return s;
      }
    }
  }

  common::Rng rng_;
  int globals_ = 0;
  int helpers_ = 0;
  int locals_ = 0;
};

class DifferentialFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzzTest, CpuAndDerivedModelAgree) {
  ProgramGenerator gen(static_cast<std::uint64_t>(GetParam()) * 0xABCDEF);
  const std::string source = gen.generate();
  SCOPED_TRACE(source);

  minic::Program program_a = minic::compile(source);
  minic::Program program_b = minic::compile(source);

  // Reference: derived-model interpreter.
  esw::EswProgram lowered = esw::lower_program(program_a);
  mem::AddressSpace mem_a(0x10000);
  minic::ZeroInputProvider in_a;
  esw::Interpreter interp(program_a, lowered, mem_a, in_a);
  interp.run(2'000'000);
  ASSERT_TRUE(interp.finished());

  // Subject: the microprocessor.
  cpu::CodeImage image = cpu::compile_to_image(program_b);
  sim::Simulation sim;
  mem::AddressSpace mem_b(0x10000);
  minic::ZeroInputProvider in_b;
  sim::Clock clock(sim, "clk", sim::Time::ns(10));
  cpu::Cpu core(sim, "cpu", image, mem_b, in_b, clock);
  core.set_stop_on_halt(true);
  sim.run(sim::Time::sec(1));
  ASSERT_TRUE(core.halted());
  ASSERT_FALSE(core.trapped()) << core.trap_message();

  for (const auto& g : program_a.globals) {
    EXPECT_EQ(mem_b.sctc_read_uint(g.address), interp.global(g.name))
        << "global " << g.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace esv

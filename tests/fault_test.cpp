// Fault-injection subsystem tests: plan parsing, target resolution, and the
// engine's deterministic injection behaviour against each bindable target
// (memory, flash, CAN, clock).
#include <gtest/gtest.h>

#include <string>

#include "can/can_controller.hpp"
#include "fault/fault_engine.hpp"
#include "fault/fault_plan.hpp"
#include "flash/flash_controller.hpp"
#include "mem/address_space.hpp"
#include "sim/clock.hpp"
#include "sim/kernel.hpp"

namespace esv::fault {
namespace {

TEST(FaultPlanTest, ParsesEveryKindWithDefaults) {
  const FaultPlan plan = parse_plan(R"(
# comment line

bitflip led
stuckbit state 2 1
flashfail erase
canfault delay 8
clockjitter
)");
  ASSERT_EQ(plan.entries.size(), 5u);

  EXPECT_EQ(plan.entries[0].kind, FaultKind::kBitFlip);
  EXPECT_EQ(plan.entries[0].target, "led");
  EXPECT_EQ(plan.entries[0].from, 0u);
  EXPECT_EQ(plan.entries[0].until, UINT64_MAX);
  EXPECT_EQ(plan.entries[0].prob_num, 1u);
  EXPECT_EQ(plan.entries[0].prob_den, 1u);

  EXPECT_EQ(plan.entries[1].kind, FaultKind::kStuckBit);
  EXPECT_EQ(plan.entries[1].bit, 2u);
  EXPECT_EQ(plan.entries[1].stuck_value, 1u);

  EXPECT_EQ(plan.entries[2].kind, FaultKind::kFlashFail);
  EXPECT_EQ(plan.entries[2].flash_op, FlashFailOp::kErase);

  EXPECT_EQ(plan.entries[3].kind, FaultKind::kCanFault);
  EXPECT_EQ(plan.entries[3].can_op, CanFaultOp::kDelay);
  EXPECT_EQ(plan.entries[3].delay_ticks, 8u);

  EXPECT_EQ(plan.entries[4].kind, FaultKind::kClockJitter);
}

TEST(FaultPlanTest, ParsesWindowAndProbClausesInAnyOrder) {
  const FaultSpec a = parse_fault_line("bitflip x window 100..500 prob 1/50", 1);
  EXPECT_EQ(a.from, 100u);
  EXPECT_EQ(a.until, 500u);
  EXPECT_EQ(a.prob_num, 1u);
  EXPECT_EQ(a.prob_den, 50u);

  const FaultSpec b = parse_fault_line("clockjitter prob 3/4 window 7..7", 2);
  EXPECT_EQ(b.from, 7u);
  EXPECT_EQ(b.until, 7u);
  EXPECT_EQ(b.prob_num, 3u);
  EXPECT_EQ(b.prob_den, 4u);
  EXPECT_TRUE(b.active_at(7));
  EXPECT_FALSE(b.active_at(6));
  EXPECT_FALSE(b.active_at(8));
}

TEST(FaultPlanTest, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_plan("frobnicate x"), FaultPlanError);
  EXPECT_THROW(parse_plan("bitflip"), FaultPlanError);
  EXPECT_THROW(parse_plan("stuckbit x 32 1"), FaultPlanError);
  EXPECT_THROW(parse_plan("stuckbit x 3 2"), FaultPlanError);
  EXPECT_THROW(parse_plan("flashfail format"), FaultPlanError);
  EXPECT_THROW(parse_plan("canfault explode"), FaultPlanError);
  EXPECT_THROW(parse_plan("canfault delay 0"), FaultPlanError);
  EXPECT_THROW(parse_plan("bitflip x window 9..3"), FaultPlanError);
  EXPECT_THROW(parse_plan("bitflip x window banana"), FaultPlanError);
  EXPECT_THROW(parse_plan("bitflip x prob 1/0"), FaultPlanError);
  EXPECT_THROW(parse_plan("bitflip x sideways"), FaultPlanError);
  // Errors carry the plan line number.
  try {
    parse_plan("bitflip ok\nbogus");
    FAIL() << "expected FaultPlanError";
  } catch (const FaultPlanError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(FaultPlanTest, ResolveFillsAddressesAndRejectsUnknownTargets) {
  FaultPlan plan = parse_plan("bitflip led\nflashfail\nstuckbit led 0 1");
  plan.resolve([](const std::string& name, std::uint32_t& address) {
    if (name != "led") return false;
    address = 0x40;
    return true;
  });
  EXPECT_EQ(plan.entries[0].address, 0x40u);
  EXPECT_TRUE(plan.entries[0].resolved);
  EXPECT_TRUE(plan.entries[1].resolved);  // non-memory kinds need no target
  EXPECT_EQ(plan.entries[2].address, 0x40u);

  FaultPlan bad = parse_plan("bitflip nosuch");
  EXPECT_THROW(
      bad.resolve([](const std::string&, std::uint32_t&) { return false; }),
      FaultPlanError);
}

TEST(FaultEngineTest, BitFlipFlipsExactlyOneBit) {
  FaultPlan plan = parse_plan("bitflip x window 3..3");
  plan.entries[0].address = 0x10;
  plan.entries[0].resolved = true;

  mem::AddressSpace memory(0x1000);
  memory.write_word(0x10, 0xA5A5A5A5u);

  FaultEngine engine(plan, /*seed=*/42);
  engine.bind_memory(memory);
  for (std::uint64_t step = 0; step < 8; ++step) engine.on_step(step);

  EXPECT_EQ(engine.injected_count(), 1u);
  const std::uint32_t diff = memory.read_word(0x10) ^ 0xA5A5A5A5u;
  EXPECT_NE(diff, 0u);
  EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit changed";
  EXPECT_NE(engine.log_text().find("bitflip x bit"), std::string::npos);
}

TEST(FaultEngineTest, StuckBitIsReassertedAndLoggedOnlyOnChange) {
  FaultPlan plan = parse_plan("stuckbit x 4 1 window 0..10");
  plan.entries[0].address = 0x20;
  plan.entries[0].resolved = true;

  mem::AddressSpace memory(0x1000);
  FaultEngine engine(plan, 1);
  engine.bind_memory(memory);

  engine.on_step(0);  // 0 -> bit forced on: one injection
  EXPECT_EQ(memory.read_word(0x20), 1u << 4);
  EXPECT_EQ(engine.injected_count(), 1u);

  engine.on_step(1);  // already stuck: no new record
  EXPECT_EQ(engine.injected_count(), 1u);

  memory.write_word(0x20, 0);  // the software "writes through" the fault
  engine.on_step(2);           // ...and the level re-asserts
  EXPECT_EQ(memory.read_word(0x20), 1u << 4);
  EXPECT_EQ(engine.injected_count(), 2u);

  engine.on_step(11);  // outside the window: left alone
  memory.write_word(0x20, 0);
  engine.on_step(12);
  EXPECT_EQ(memory.read_word(0x20), 0u);
}

TEST(FaultEngineTest, FlashFailFailsTheNextMatchingCommand) {
  const FaultPlan plan = parse_plan("flashfail erase window 0..0");

  flash::FlashController flash;
  FaultEngine engine(plan, 1);
  engine.bind_flash(flash);
  engine.on_step(0);
  EXPECT_EQ(engine.injected_count(), 1u);

  // A program does not consume the armed erase fault...
  flash.mmio_write(flash::FlashController::kRegAddr, 0);
  flash.mmio_write(flash::FlashController::kRegData, 0x1234);
  flash.mmio_write(flash::FlashController::kRegCmd,
                   flash::FlashController::kCmdProgramWord);
  while (flash.busy()) flash.tick();
  EXPECT_FALSE(flash.error());
  EXPECT_EQ(flash.word_at(0), 0x1234u);

  // ...the next erase fails with the ERROR bit.
  flash.mmio_write(flash::FlashController::kRegAddr, 0);
  flash.mmio_write(flash::FlashController::kRegCmd,
                   flash::FlashController::kCmdErasePage);
  while (flash.busy()) flash.tick();
  EXPECT_TRUE(flash.error());
  EXPECT_EQ(flash.failed_op_count(), 1u);
  EXPECT_EQ(flash.word_at(0), 0x1234u) << "failed erase must not erase";
}

TEST(FaultEngineTest, CanFaultsCorruptDropAndDelay) {
  const auto transmit = [](can::CanController& can, std::uint32_t id,
                           std::uint32_t data) {
    can.mmio_write(can::CanController::kRegTxId, id);
    can.mmio_write(can::CanController::kRegTxData, data);
    can.mmio_write(can::CanController::kRegTxCtrl, 1);
    std::uint32_t ticks = 0;
    while (can.tx_busy()) {
      can.tick();
      ++ticks;
    }
    return ticks;
  };

  // Corrupt: frame reaches the log with a flipped payload.
  {
    can::CanController can;
    const FaultPlan plan = parse_plan("canfault corrupt window 0..0");
    FaultEngine engine(plan, 3);
    engine.bind_can(can);
    engine.on_step(0);
    transmit(can, 0x10, 0xCAFE);
    ASSERT_EQ(can.tx_log().size(), 1u);
    EXPECT_EQ(can.tx_log()[0].id, 0x10u);
    EXPECT_NE(can.tx_log()[0].data, 0xCAFEu);
  }
  // Drop: the sender completes but the frame never reaches the bus.
  {
    can::CanController can;
    const FaultPlan plan = parse_plan("canfault drop window 0..0");
    FaultEngine engine(plan, 3);
    engine.bind_can(can);
    engine.on_step(0);
    transmit(can, 0x10, 0xCAFE);
    EXPECT_TRUE(can.tx_log().empty());
    transmit(can, 0x11, 0xBEEF);  // only the next frame was lost
    ASSERT_EQ(can.tx_log().size(), 1u);
    EXPECT_EQ(can.tx_log()[0].data, 0xBEEFu);
  }
  // Delay: the transmission takes the configured extra busy ticks.
  {
    can::CanController can;
    const std::uint32_t baseline = transmit(can, 1, 2);
    const FaultPlan plan = parse_plan("canfault delay 8 window 0..0");
    FaultEngine engine(plan, 3);
    engine.bind_can(can);
    engine.on_step(0);
    EXPECT_EQ(transmit(can, 1, 2), baseline + 8);
  }
}

TEST(FaultEngineTest, ClockJitterFiresASpuriousEdge) {
  sim::Simulation sim;
  sim::Clock clock(sim, "clk", sim::Time::ns(10));
  const FaultPlan plan = parse_plan("clockjitter window 0..0");
  FaultEngine engine(plan, 9);
  engine.bind_clock(clock);

  const std::uint64_t before = clock.cycles();
  engine.on_step(0);
  EXPECT_EQ(clock.cycles(), before + 1);
  EXPECT_EQ(engine.injected_count(), 1u);
}

TEST(FaultEngineTest, SameSeedSamePlanSameLog) {
  FaultPlan plan = parse_plan("bitflip x prob 1/3\nclockjitter prob 1/5");
  plan.entries[0].address = 0x40;
  plan.entries[0].resolved = true;

  const auto run = [&plan](std::uint64_t seed) {
    mem::AddressSpace memory(0x1000);
    FaultEngine engine(plan, seed);
    engine.bind_memory(memory);
    for (std::uint64_t step = 0; step < 500; ++step) engine.on_step(step);
    return engine.log_text();
  };

  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(FaultEngineTest, ChanceStreamIsIndependentOfBindings) {
  // The same plan with and without a bound memory must inject at the same
  // steps for the bound kinds — unbound entries consume their draws too.
  FaultPlan plan =
      parse_plan("flashfail prob 1/4\nbitflip x prob 1/4\nclockjitter prob 1/4");
  plan.entries[1].address = 0x40;
  plan.entries[1].resolved = true;

  const auto bitflip_steps = [&plan](bool bind_flash_and_clock) {
    mem::AddressSpace memory(0x1000);
    flash::FlashController flash;
    sim::Simulation sim;
    sim::Clock clock(sim, "clk", sim::Time::ns(10));
    FaultEngine engine(plan, 11, /*log_limit=*/0);
    engine.bind_memory(memory);
    if (bind_flash_and_clock) {
      engine.bind_flash(flash);
      engine.bind_clock(clock);
    }
    for (std::uint64_t step = 0; step < 200; ++step) engine.on_step(step);
    std::string steps;
    for (const FaultRecord& rec : engine.log()) {
      if (rec.text.find("bitflip") != std::string::npos) {
        steps += std::to_string(rec.step) + ",";
      }
    }
    return steps;
  };

  EXPECT_EQ(bitflip_steps(false), bitflip_steps(true));
}

TEST(FaultEngineTest, LogLimitKeepsCountsExact) {
  FaultPlan plan = parse_plan("bitflip x");
  plan.entries[0].address = 0x40;
  plan.entries[0].resolved = true;

  mem::AddressSpace memory(0x1000);
  FaultEngine engine(plan, 1, /*log_limit=*/3);
  engine.bind_memory(memory);
  for (std::uint64_t step = 0; step < 10; ++step) engine.on_step(step);

  EXPECT_EQ(engine.injected_count(), 10u);
  EXPECT_EQ(engine.log().size(), 3u);
  EXPECT_NE(engine.log_text().find("7 more faults injected"),
            std::string::npos);
}

}  // namespace
}  // namespace esv::fault

// Tests for Signal<T> evaluate/update semantics and the Clock generator.
#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"
#include "sim/kernel.hpp"
#include "sim/signal.hpp"

namespace esv::sim {
namespace {

TEST(SignalTest, WriteCommitsAtUpdatePhase) {
  Simulation sim;
  Signal<int> sig(sim, "sig", 0);
  std::vector<int> observed;
  sim.spawn("writer", [](Simulation& s, Signal<int>& sg,
                         std::vector<int>& out) -> Task {
    sg.write(7);
    out.push_back(sg.read());  // still old value in the same evaluate phase
    co_await s.next_delta();
    out.push_back(sg.read());  // committed after the update phase
  }(sim, sig, observed));
  sim.run();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], 0);
  EXPECT_EQ(observed[1], 7);
}

TEST(SignalTest, ValueChangedFiresOnlyOnRealChange) {
  Simulation sim;
  Signal<int> sig(sim, "sig", 5);
  int changes = 0;
  sim.create_method("watch", [&changes] { ++changes; },
                    {&sig.value_changed_event()}, /*run_at_start=*/false);
  sim.spawn("writer", [](Simulation& s, Signal<int>& sg) -> Task {
    sg.write(5);  // same value: no event
    co_await s.delay(Time::ns(1));
    sg.write(6);  // change: event
    co_await s.delay(Time::ns(1));
    sg.write(6);  // same again: no event
    co_await s.delay(Time::ns(1));
    sg.write(7);  // change: event
  }(sim, sig));
  sim.run();
  EXPECT_EQ(changes, 2);
}

TEST(SignalTest, LastWriteInDeltaWins) {
  Simulation sim;
  Signal<int> sig(sim, "sig", 0);
  sim.spawn("writer", [](Signal<int>& sg) -> Task {
    sg.write(1);
    sg.write(2);
    sg.write(3);
    co_return;
  }(sig));
  sim.run();
  EXPECT_EQ(sig.read(), 3);
}

TEST(ClockTest, PosedgeCountMatchesElapsedTime) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  sim.run(Time::ns(100));
  // First posedge at 10 ns, then every 10 ns: 10, 20, ..., 100.
  EXPECT_EQ(clk.cycles(), 10u);
}

TEST(ClockTest, PosedgeEventTriggersWaiters) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  std::vector<std::uint64_t> stamps;
  sim.spawn("waiter", [](Simulation& s, Clock& c,
                         std::vector<std::uint64_t>& out) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await c.posedge_event();
      out.push_back(s.now().picoseconds());
    }
  }(sim, clk, stamps));
  sim.run(Time::ns(100));
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 10000u);
  EXPECT_EQ(stamps[1], 20000u);
  EXPECT_EQ(stamps[2], 30000u);
}

TEST(ClockTest, ValueTogglesBetweenEdges) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  bool at_posedge = false;
  bool at_negedge = true;
  sim.spawn("watch", [](Clock& c, bool& pos, bool& neg) -> Task {
    co_await c.posedge_event();
    pos = c.value();
    co_await c.negedge_event();
    neg = c.value();
  }(clk, at_posedge, at_negedge));
  sim.run(Time::ns(30));
  EXPECT_TRUE(at_posedge);
  EXPECT_FALSE(at_negedge);
}

TEST(ClockTest, CustomFirstEdge) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10), Time::ns(3));
  std::uint64_t first = 0;
  sim.spawn("watch", [](Simulation& s, Clock& c, std::uint64_t& t) -> Task {
    co_await c.posedge_event();
    t = s.now().picoseconds();
  }(sim, clk, first));
  sim.run(Time::ns(30));
  EXPECT_EQ(first, 3000u);
}

TEST(ClockTest, ZeroPeriodRejected) {
  Simulation sim;
  EXPECT_THROW(Clock(sim, "bad", Time::zero()), std::invalid_argument);
}

TEST(ClockTest, NegedgeBetweenPosedges) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  std::vector<std::uint64_t> neg_stamps;
  sim.spawn("watch", [](Simulation& s, Clock& c,
                        std::vector<std::uint64_t>& out) -> Task {
    for (int i = 0; i < 2; ++i) {
      co_await c.negedge_event();
      out.push_back(s.now().picoseconds());
    }
  }(sim, clk, neg_stamps));
  sim.run(Time::ns(40));
  ASSERT_EQ(neg_stamps.size(), 2u);
  EXPECT_EQ(neg_stamps[0], 15000u);
  EXPECT_EQ(neg_stamps[1], 25000u);
}

}  // namespace
}  // namespace esv::sim

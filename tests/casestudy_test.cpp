// Tests for the EEPROM-emulation case study: the software's functional
// behaviour on the derived model, operation specs, properties, coverage,
// and both experiment harnesses end to end.
#include <gtest/gtest.h>

#include <map>

#include "casestudy/eeprom.hpp"
#include "casestudy/harness.hpp"
#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "minic/sema.hpp"
#include "stimulus/coverage.hpp"
#include "stimulus/random_inputs.hpp"

namespace esv::casestudy {
namespace {

/// Scripted application layer: drives the main loop with a fixed operation
/// sequence instead of random stimulus.
class ScriptedApp : public minic::InputProvider {
 public:
  struct Step {
    int op;             // 0 format, 1 startup1, 2 startup2, 3 read, 4 write,
                        // 5 prepare, 6 refresh
    std::uint32_t id = 0;
    std::uint32_t data = 0;
    bool fault = false;
  };

  explicit ScriptedApp(std::vector<Step> steps) : steps_(std::move(steps)) {}

  std::uint32_t input(int, const std::string& name) override {
    const Step& s = steps_[index_ >= steps_.size() ? steps_.size() - 1 : index_];
    if (name == "op_select") {
      // op_select is the first input of each loop iteration.
      if (started_) ++index_;
      started_ = true;
      const Step& cur =
          steps_[index_ >= steps_.size() ? steps_.size() - 1 : index_];
      return static_cast<std::uint32_t>(cur.op);
    }
    if (name == "inject_fault") return s.fault ? 1 : 0;
    if (name == "rec_id") return s.id;
    if (name == "wdata") return s.data;
    return 0;
  }

 private:
  std::vector<Step> steps_;
  std::size_t index_ = 0;
  bool started_ = false;
};

struct EswRun {
  explicit EswRun(minic::InputProvider& provider)
      : program(minic::compile(eeprom_emulation_source())),
        lowered(esw::lower_program(program)),
        memory(0x4000),
        flash_dev(eeprom_flash_config()),
        interp((memory.map_device(kFlashMmioBase, flash_dev.window_bytes(),
                                  flash_dev),
                program),
               lowered, memory, provider) {}

  /// Runs until `n` test cases completed (with a step budget).
  void run_test_cases(std::uint64_t n, std::uint64_t budget = 3000000) {
    const std::uint32_t tc_addr = program.find_global("test_cases")->address;
    std::uint64_t steps = 0;
    while (steps < budget && memory.sctc_read_uint(tc_addr) < n) {
      ASSERT_TRUE(interp.step()) << "software terminated unexpectedly";
      ++steps;
    }
    ASSERT_LT(steps, budget) << "did not reach " << n << " test cases";
  }

  std::uint32_t g(const std::string& name) const {
    return interp.global(name);
  }

  minic::Program program;
  esw::EswProgram lowered;
  mem::AddressSpace memory;
  flash::FlashController flash_dev;
  esw::Interpreter interp;
};

TEST(EepromSoftwareTest, CompilesAndHasAllOperations) {
  minic::Program program = minic::compile(eeprom_emulation_source());
  for (const OperationSpec& op : eeprom_operations()) {
    EXPECT_NE(program.find_function(op.function), nullptr) << op.function;
    EXPECT_NE(program.find_global(op.ret_global), nullptr) << op.ret_global;
  }
  // A substantial, layered program: DFA + EEE + app layers.
  EXPECT_GE(program.functions.size(), 25u);
}

TEST(EepromSoftwareTest, FormatThenWriteThenRead) {
  ScriptedApp app({{.op = 0},                         // format
                   {.op = 4, .id = 3, .data = 0x55},  // write id3 = 0x55
                   {.op = 3, .id = 3},                // read id3
                   {.op = 3, .id = 5}});              // read id5: not found
  EswRun r(app);
  r.run_test_cases(4);
  EXPECT_EQ(r.g("ret_format"), kEeeOk);
  EXPECT_EQ(r.g("ret_write"), kEeeOk);
  EXPECT_EQ(r.g("ret_read"), kEeeErrNotFound);  // last read was id5
  EXPECT_EQ(r.g("read_value"), 0x55u);          // but id3's value was seen
}

TEST(EepromSoftwareTest, ReadBeforeStartupIsRejected) {
  ScriptedApp app({{.op = 3, .id = 0}});
  EswRun r(app);
  r.run_test_cases(1);
  EXPECT_EQ(r.g("ret_read"), kEeeErrRejected);
}

TEST(EepromSoftwareTest, ParameterErrorOnBadId) {
  ScriptedApp app({{.op = 0}, {.op = 3, .id = 9}});  // MAX_IDS is 8
  EswRun r(app);
  r.run_test_cases(2);
  EXPECT_EQ(r.g("ret_read"), kEeeErrParameter);
}

TEST(EepromSoftwareTest, StartupFindsFormattedPool) {
  // Format, then simulate a reboot by running startup1/startup2 on the same
  // flash (the interpreter keeps the flash device state).
  ScriptedApp app({{.op = 0},
                   {.op = 4, .id = 1, .data = 42},
                   {.op = 1},    // startup1
                   {.op = 2},    // startup2
                   {.op = 3, .id = 1}});
  EswRun r(app);
  r.run_test_cases(5);
  EXPECT_EQ(r.g("ret_startup1"), kEeeOk);
  EXPECT_EQ(r.g("ret_startup2"), kEeeOk);
  EXPECT_EQ(r.g("ret_read"), kEeeOk);
  EXPECT_EQ(r.g("read_value"), 42u);
}

TEST(EepromSoftwareTest, StartupOnBlankFlashReportsNoInstance) {
  ScriptedApp app(std::vector<ScriptedApp::Step>{{.op = 1}});
  EswRun r(app);
  r.run_test_cases(1);
  EXPECT_EQ(r.g("ret_startup1"), kEeeErrNoInstance);
}

TEST(EepromSoftwareTest, PoolFullAfterManyWrites) {
  std::vector<ScriptedApp::Step> steps{{.op = 0}};
  // 30 record slots per page ((64-4)/2); write 31 times.
  for (int i = 0; i < 31; ++i) {
    steps.push_back({.op = 4, .id = static_cast<std::uint32_t>(i % 8),
                     .data = static_cast<std::uint32_t>(i)});
  }
  ScriptedApp app(steps);
  EswRun r(app);
  r.run_test_cases(32);
  EXPECT_EQ(r.g("ret_write"), kEeeErrPoolFull);
}

TEST(EepromSoftwareTest, PrepareRefreshCycleCompactsPool) {
  std::vector<ScriptedApp::Step> steps{{.op = 0}};
  // Overwrite id 2 many times, then prepare+refresh, then read.
  for (int i = 0; i < 10; ++i) {
    steps.push_back({.op = 4, .id = 2, .data = static_cast<std::uint32_t>(i)});
  }
  steps.push_back({.op = 5});            // prepare
  steps.push_back({.op = 6});            // refresh
  steps.push_back({.op = 3, .id = 2});   // read id 2
  ScriptedApp app(steps);
  EswRun r(app);
  r.run_test_cases(14);
  EXPECT_EQ(r.g("ret_prepare"), kEeeOk);
  EXPECT_EQ(r.g("ret_refresh"), kEeeOk);
  EXPECT_EQ(r.g("ret_read"), kEeeOk);
  EXPECT_EQ(r.g("read_value"), 9u);       // newest value survives refresh
  EXPECT_EQ(r.g("eee_cursor"), 1u);       // compacted to one record
  EXPECT_EQ(r.g("eee_active_page"), 1u);  // switched pages
}

TEST(EepromSoftwareTest, RefreshWithoutPrepareRejected) {
  ScriptedApp app({{.op = 0}, {.op = 6}});
  EswRun r(app);
  r.run_test_cases(2);
  EXPECT_EQ(r.g("ret_refresh"), kEeeErrRejected);
}

TEST(EepromSoftwareTest, InjectedFaultYieldsInternalError) {
  ScriptedApp app({{.op = 0},
                   {.op = 4, .id = 1, .data = 7, .fault = true}});
  EswRun r(app);
  r.run_test_cases(2);
  EXPECT_EQ(r.g("ret_write"), kEeeErrInternal);
}

TEST(EepromSoftwareTest, InvalidateHidesIdAndRefreshDropsIt) {
  ScriptedApp app({{.op = 0},                         // format
                   {.op = 4, .id = 2, .data = 77},    // write id2
                   {.op = 7, .id = 2},                // invalidate id2
                   {.op = 3, .id = 2},                // read id2: gone
                   {.op = 5},                         // prepare
                   {.op = 6},                         // refresh (compaction)
                   {.op = 3, .id = 2}});              // still gone
  EswRun r(app);
  r.run_test_cases(7);
  EXPECT_EQ(r.g("ret_invalidate"), kEeeOk);
  EXPECT_EQ(r.g("ret_read"), kEeeErrNotFound);
  EXPECT_EQ(r.g("ret_refresh"), kEeeOk);
  EXPECT_EQ(r.g("eee_cursor"), 0u);  // the tombstone was not carried over
}

TEST(EepromSoftwareTest, InvalidateOfUnknownIdReportsNotFound) {
  ScriptedApp app({{.op = 0}, {.op = 7, .id = 5}});
  EswRun r(app);
  r.run_test_cases(2);
  EXPECT_EQ(r.g("ret_invalidate"), kEeeErrNotFound);
}

// Power-loss robustness: interrupt a write between the value and checksum
// programs, "reboot" (fresh interpreter over the same flash), and check that
// startup detects the torn record and the data stays consistent.
TEST(EepromSoftwareTest, TornWriteIsDetectedAndSkippedAfterReboot) {
  ScriptedApp app({{.op = 0},                        // format (2 programs)
                   {.op = 4, .id = 3, .data = 0xAB}});
  EswRun r(app);
  // Run until the value word of the record is programmed (program #4:
  // 2 marks + id + value) but the checksum word is not: a torn write.
  std::uint64_t guard = 0;
  while (r.flash_dev.program_count() < 4 && guard++ < 1000000) {
    ASSERT_TRUE(r.interp.step());
  }
  ASSERT_EQ(r.flash_dev.program_count(), 4u);

  // Reboot: new software instance over the same (persistent) flash.
  ScriptedApp boot({{.op = 1},               // startup1
                    {.op = 2},               // startup2
                    {.op = 3, .id = 3},      // read id3: torn, not found
                    {.op = 4, .id = 3, .data = 0xCD},  // rewrite
                    {.op = 3, .id = 3}});    // now found
  esw::Interpreter second(r.program, r.lowered, r.memory, boot);
  const std::uint32_t tc_addr =
      r.program.find_global("test_cases")->address;
  guard = 0;
  while (r.memory.sctc_read_uint(tc_addr) < 5 && guard++ < 3000000) {
    ASSERT_TRUE(second.step());
  }
  EXPECT_EQ(second.global("ret_startup1"), kEeeOk);
  EXPECT_EQ(second.global("ret_startup2"), kEeeOk);
  EXPECT_EQ(second.global("eee_torn"), 1u);    // the torn record was seen
  // Startup left the cursor past the torn slot (1); the rewrite appended at
  // slot 1 without colliding with the half-programmed cells, so it is 2 now.
  EXPECT_EQ(second.global("eee_cursor"), 2u);
  EXPECT_EQ(second.global("ret_write"), kEeeOk);
  EXPECT_EQ(second.global("ret_read"), kEeeOk);
  EXPECT_EQ(second.global("read_value"), 0xCDu);
}

TEST(EepromSoftwareTest, PowerLossDuringRefreshIsRecoverable) {
  // Fill some data, prepare, then cut power in the middle of the refresh
  // copy phase. After reboot the old page must still be active (its INVALID
  // mark was never programmed) and every committed value readable.
  ScriptedApp app({{.op = 0},
                   {.op = 4, .id = 1, .data = 11},
                   {.op = 4, .id = 2, .data = 22},
                   {.op = 5},    // prepare
                   {.op = 6}});  // refresh (will be interrupted)
  EswRun r(app);
  const std::uint32_t tc_addr =
      r.program.find_global("test_cases")->address;
  std::uint64_t guard = 0;
  // Run up to the start of the refresh, then a little into the copy phase.
  while (r.memory.sctc_read_uint(tc_addr) < 4 && guard++ < 3000000) {
    ASSERT_TRUE(r.interp.step());
  }
  const std::uint64_t programs_before = r.flash_dev.program_count();
  guard = 0;
  while (r.flash_dev.program_count() < programs_before + 2 &&
         guard++ < 1000000) {
    ASSERT_TRUE(r.interp.step());  // a record landed on the prepared page
  }

  ScriptedApp boot({{.op = 1},
                    {.op = 2},
                    {.op = 3, .id = 1},
                    {.op = 3, .id = 2}});
  esw::Interpreter second(r.program, r.lowered, r.memory, boot);
  guard = 0;
  while (r.memory.sctc_read_uint(tc_addr) < 4 && guard++ < 3000000) {
    ASSERT_TRUE(second.step());
  }
  EXPECT_EQ(second.global("ret_startup1"), kEeeOk);
  EXPECT_EQ(second.global("eee_active_page"), 0u);  // old page still active
  EXPECT_EQ(second.global("read_value"), 22u);      // id2 intact
  EXPECT_EQ(second.global("ret_read"), kEeeOk);
}

// --- specs / properties -------------------------------------------------------

TEST(OperationSpecTest, TableIsCompleteAndConsistent) {
  const auto& ops = eeprom_operations();
  ASSERT_EQ(ops.size(), 7u);
  std::map<int, int> op_codes;
  for (const auto& op : ops) {
    EXPECT_FALSE(op.return_codes.empty()) << op.name;
    ++op_codes[op.op_code];
  }
  EXPECT_EQ(op_codes.size(), 7u);  // distinct dispatch codes
  EXPECT_EQ(operation_by_name("Read").function, "EEE_Read");
  EXPECT_THROW(operation_by_name("Bogus"), std::invalid_argument);
}

TEST(OperationSpecTest, PslAndFltlPropertiesAreTheSameFormula) {
  // SCTC accepts both dialects; the case-study properties must denote the
  // identical hash-consed formula in either syntax.
  temporal::FormulaFactory factory;
  for (const OperationSpec& op : eeprom_operations()) {
    for (const auto& bound :
         {std::optional<std::uint32_t>(1000), std::optional<std::uint32_t>()}) {
      const auto fltl =
          temporal::parse_fltl(response_property(op, bound), factory);
      const auto psl =
          temporal::parse_psl(response_property_psl(op, bound), factory);
      EXPECT_EQ(fltl, psl) << op.name;
    }
  }
}

TEST(OperationSpecTest, ResponsePropertyText) {
  const OperationSpec& read = operation_by_name("Read");
  EXPECT_EQ(response_property(read, 1000),
            "G (Read -> F[1000] (Read_EEE_OK || Read_EEE_ERR_NOT_FOUND || "
            "Read_EEE_ERR_PARAMETER || Read_EEE_ERR_REJECTED))");
  EXPECT_EQ(response_property(read, std::nullopt, PropertyShape::kPaperLiteral)
                .substr(0, 11),
            "F (Read -> ");
}

TEST(CoverageTest, TracksDocumentedCodesOnly) {
  stimulus::ReturnCodeCoverage cov({1, 5, 7});
  EXPECT_EQ(cov.percent(), 0.0);
  cov.observe(0);   // "no return yet" ignored
  cov.observe(1);
  cov.observe(1);   // duplicates don't double count
  EXPECT_NEAR(cov.percent(), 100.0 / 3, 1e-9);
  cov.observe(5);
  cov.observe(7);
  EXPECT_TRUE(cov.complete());
  cov.observe(42);  // undocumented: anomaly
  EXPECT_EQ(cov.anomaly_count(), 1u);
  cov.reset();
  EXPECT_EQ(cov.percent(), 0.0);
}

TEST(RandomInputsTest, ConstraintsAreEnforced) {
  stimulus::RandomInputProvider inputs(7);
  inputs.set_range("a", 3, 5);
  inputs.set_weighted("b", {{10, 1}, {20, 0}});
  inputs.set_chance("c", 0, 10);
  for (int i = 0; i < 50; ++i) {
    const auto a = inputs.input(0, "a");
    EXPECT_GE(a, 3u);
    EXPECT_LE(a, 5u);
    EXPECT_EQ(inputs.input(1, "b"), 10u);  // zero-weight value never drawn
    EXPECT_EQ(inputs.input(2, "c"), 0u);
  }
  EXPECT_EQ(inputs.draw_count(), 150u);
  EXPECT_THROW(inputs.input(3, "unconstrained"), std::runtime_error);
}

// --- harness end-to-end -------------------------------------------------------

class HarnessTest : public ::testing::TestWithParam<sctc::MonitorMode> {};

TEST_P(HarnessTest, Approach2RunsReadProperty) {
  ExperimentConfig config;
  config.max_test_cases = 300;
  config.time_bound = 10000;
  config.mode = GetParam();
  config.seed = 42;
  const ExperimentResult r =
      run_with_esw_model(operation_by_name("Read"), config);
  EXPECT_EQ(r.operation, "Read");
  EXPECT_EQ(r.test_cases, 300u);
  EXPECT_GT(r.coverage_percent, 0.0);
  EXPECT_EQ(r.coverage_anomalies, 0u);
  // The response property must never be violated: that would be a bug in
  // the EEPROM software ("all the tested properties were safe").
  EXPECT_NE(r.verdict, temporal::Verdict::kViolated);
  if (GetParam() == sctc::MonitorMode::kSynthesizedAutomaton) {
    EXPECT_GT(r.automaton_states, 10000u);  // grows with the bound
  }
}

TEST_P(HarnessTest, Approach1RunsReadProperty) {
  ExperimentConfig config;
  config.max_test_cases = 30;  // the processor path is slow by design
  config.mode = GetParam();
  config.seed = 42;
  const ExperimentResult r =
      run_with_microprocessor(operation_by_name("Read"), config);
  EXPECT_EQ(r.test_cases, 30u);
  EXPECT_FALSE(r.cpu_trapped);
  EXPECT_NE(r.verdict, temporal::Verdict::kViolated);
  EXPECT_GT(r.temporal_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, HarnessTest,
                         ::testing::Values(sctc::MonitorMode::kProgression,
                                           sctc::MonitorMode::kSynthesizedAutomaton),
                         [](const ::testing::TestParamInfo<sctc::MonitorMode>& info) {
                           return info.param == sctc::MonitorMode::kProgression
                                      ? "progression"
                                      : "automaton";
                         });

TEST(HarnessTest2, AllOperationsSafeOnEswModel) {
  for (const OperationSpec& op : eeprom_operations()) {
    ExperimentConfig config;
    config.max_test_cases = 200;
    config.seed = 7;
    const ExperimentResult r = run_with_esw_model(op, config);
    EXPECT_NE(r.verdict, temporal::Verdict::kViolated) << op.name;
    EXPECT_EQ(r.coverage_anomalies, 0u) << op.name;
    EXPECT_EQ(r.test_cases, 200u) << op.name;
  }
}

TEST(HarnessTest2, Approach2IsFasterPerTestCase) {
  ExperimentConfig config;
  config.max_test_cases = 50;
  config.seed = 3;
  const ExperimentResult slow =
      run_with_microprocessor(operation_by_name("Write"), config);
  const ExperimentResult fast =
      run_with_esw_model(operation_by_name("Write"), config);
  ASSERT_EQ(slow.test_cases, fast.test_cases);
  // The paper reports up to 900x; require at least a solid multiple here to
  // keep the test robust on slow machines.
  EXPECT_GT(slow.verification_seconds, 3 * fast.verification_seconds);
}

TEST(HarnessTest2, TightBoundViolatesSlowOperation) {
  // A 50-statement budget is far too small for Format (it erases 8 pages
  // with busy polling), so the bounded response property must be violated —
  // the mechanism behind the paper's coverage-vs-bound observations.
  ExperimentConfig config;
  config.max_test_cases = 300;
  config.time_bound = 50;
  config.seed = 11;
  const ExperimentResult r =
      run_with_esw_model(operation_by_name("Format"), config);
  EXPECT_EQ(r.verdict, temporal::Verdict::kViolated);
}

TEST(HarnessTest2, KernelAndLockstepApproach2Agree) {
  // The in-kernel variant (the paper's literal SystemC setup) and the
  // kernel-free lockstep must produce identical functional results.
  ExperimentConfig lockstep;
  lockstep.max_test_cases = 150;
  lockstep.seed = 21;
  ExperimentConfig kernel = lockstep;
  kernel.esw_in_kernel = true;
  const ExperimentResult a =
      run_with_esw_model(operation_by_name("Read"), lockstep);
  const ExperimentResult b =
      run_with_esw_model(operation_by_name("Read"), kernel);
  EXPECT_EQ(a.test_cases, b.test_cases);
  EXPECT_EQ(a.coverage_percent, b.coverage_percent);
  EXPECT_EQ(a.verdict, b.verdict);
}

TEST(HarnessTest2, DeterministicForSameSeed) {
  ExperimentConfig config;
  config.max_test_cases = 100;
  config.seed = 99;
  const ExperimentResult a =
      run_with_esw_model(operation_by_name("Write"), config);
  const ExperimentResult b =
      run_with_esw_model(operation_by_name("Write"), config);
  EXPECT_EQ(a.test_cases, b.test_cases);
  EXPECT_EQ(a.temporal_steps, b.temporal_steps);
  EXPECT_EQ(a.coverage_percent, b.coverage_percent);
  EXPECT_EQ(a.verdict, b.verdict);
}

}  // namespace
}  // namespace esv::casestudy

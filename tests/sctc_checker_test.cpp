// Tests for the SCTC temporal checker: propositions, property registration,
// trigger binding, both monitor modes, and the ESW monitor handshake.
#include <gtest/gtest.h>

#include <map>

#include "sctc/checker.hpp"
#include "sctc/esw_monitor.hpp"
#include "sim/clock.hpp"

namespace esv::sctc {
namespace {

using temporal::Verdict;

TEST(PropositionTest, LambdaAndIsFalse) {
  bool value = false;
  LambdaProposition p([&value] { return value; });
  EXPECT_FALSE(p.is_true());
  EXPECT_TRUE(p.is_false());
  value = true;
  EXPECT_TRUE(p.is_true());
}

TEST(PropositionTest, CloneIsIndependentObject) {
  bool value = true;
  LambdaProposition p([&value] { return value; });
  auto c = p.clone();
  EXPECT_TRUE(c->is_true());
  value = false;
  EXPECT_FALSE(c->is_true());  // clones share the wrapped predicate
}

class FakeMemory : public MemoryReadInterface {
 public:
  std::uint32_t sctc_read_uint(std::uint32_t address) const override {
    auto it = words.find(address);
    return it == words.end() ? 0u : it->second;
  }
  std::map<std::uint32_t, std::uint32_t> words;
};

TEST(PropositionTest, MemoryWordComparisons) {
  FakeMemory mem;
  mem.words[0x100] = 42;
  EXPECT_TRUE(MemoryWordProposition(mem, 0x100, Compare::kEq, 42).is_true());
  EXPECT_FALSE(MemoryWordProposition(mem, 0x100, Compare::kNe, 42).is_true());
  EXPECT_TRUE(MemoryWordProposition(mem, 0x100, Compare::kLt, 43).is_true());
  EXPECT_TRUE(MemoryWordProposition(mem, 0x100, Compare::kLe, 42).is_true());
  EXPECT_TRUE(MemoryWordProposition(mem, 0x100, Compare::kGt, 41).is_true());
  EXPECT_TRUE(MemoryWordProposition(mem, 0x100, Compare::kGe, 42).is_true());
  EXPECT_FALSE(MemoryWordProposition(mem, 0x999, Compare::kEq, 42).is_true());
}

TEST(PropositionTest, RisingEdgeFiresOncePerEdge) {
  bool value = false;
  auto inner = std::make_unique<LambdaProposition>([&value] { return value; });
  RisingEdgeProposition edge(std::move(inner));
  EXPECT_FALSE(edge.is_true());
  value = true;
  EXPECT_TRUE(edge.is_true());   // 0 -> 1
  EXPECT_FALSE(edge.is_true());  // stays 1: no new edge
  value = false;
  EXPECT_FALSE(edge.is_true());
  value = true;
  EXPECT_TRUE(edge.is_true());
}

// --- TemporalChecker ---------------------------------------------------------

class CheckerTest : public ::testing::TestWithParam<MonitorMode> {
 protected:
  sim::Simulation sim;
};

TEST_P(CheckerTest, ViolationDetected) {
  TemporalChecker checker(sim, "sctc", GetParam());
  int x = 0;
  checker.register_proposition("x_small", [&x] { return x < 3; });
  checker.add_property("keep_small", "G x_small");
  for (x = 0; x < 5; ++x) {
    checker.step_all();
  }
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kViolated);
  EXPECT_EQ(checker.properties()[0].decided_at_step, 4u);  // x==3 at step 4
  EXPECT_EQ(checker.violated_count(), 1u);
  EXPECT_TRUE(checker.any_violated());
}

TEST_P(CheckerTest, ValidationDetected) {
  TemporalChecker checker(sim, "sctc", GetParam());
  int x = 0;
  checker.register_proposition("done", [&x] { return x == 3; });
  checker.add_property("finishes", "F done");
  for (x = 0; x < 5; ++x) checker.step_all();
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kValidated);
  EXPECT_EQ(checker.validated_count(), 1u);
}

TEST_P(CheckerTest, MultiplePropertiesIndependent) {
  TemporalChecker checker(sim, "sctc", GetParam());
  int x = 0;
  checker.register_proposition("p", [&x] { return x % 2 == 0; });
  checker.register_proposition("q", [&x] { return x > 100; });
  checker.add_property("tautology", "G (p || !p)");  // folds to true at parse
  checker.add_property("never_q", "G !q");
  checker.add_property("eventually_q", "F q");
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kValidated);
  for (x = 0; x < 10; ++x) checker.step_all();
  EXPECT_EQ(checker.pending_count(), 2u);  // the two real ones still pending
  x = 101;
  checker.step_all();
  EXPECT_EQ(checker.properties()[1].verdict(), Verdict::kViolated);
  EXPECT_EQ(checker.properties()[2].verdict(), Verdict::kValidated);
}

TEST_P(CheckerTest, UnregisteredPropositionRejected) {
  TemporalChecker checker(sim, "sctc", GetParam());
  checker.register_proposition("a", [] { return true; });
  EXPECT_THROW(checker.add_property("bad", "G (a && missing)"),
               std::runtime_error);
}

TEST_P(CheckerTest, BoundedPropertyCountsTriggerSteps) {
  TemporalChecker checker(sim, "sctc", GetParam());
  bool ok = false;
  checker.register_proposition("ok", [&ok] { return ok; });
  checker.add_property("soon", "F[3] ok");
  checker.step_all();
  checker.step_all();
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kPending);
  ok = true;
  checker.step_all();
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kValidated);
}

TEST_P(CheckerTest, BoundedPropertyExpires) {
  TemporalChecker checker(sim, "sctc", GetParam());
  checker.register_proposition("ok", [] { return false; });
  checker.add_property("soon", "F[3] ok");
  for (int i = 0; i < 4; ++i) checker.step_all();
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kViolated);
  EXPECT_EQ(checker.properties()[0].decided_at_step, 4u);
}

TEST_P(CheckerTest, TriggerBindingStepsOnEvent) {
  TemporalChecker checker(sim, "sctc", GetParam());
  sim::Clock clk(sim, "clk", sim::Time::ns(10));
  checker.register_proposition("tick", [] { return true; });
  checker.add_property("alive", "G tick");
  checker.bind_trigger(clk.posedge_event());
  sim.run(sim::Time::ns(100));
  EXPECT_EQ(checker.steps(), 10u);
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kPending);
}

TEST_P(CheckerTest, StopOnViolationHaltsSimulation) {
  TemporalChecker checker(sim, "sctc", GetParam());
  sim::Clock clk(sim, "clk", sim::Time::ns(10));
  checker.register_proposition("early", [&] { return sim.now() < sim::Time::ns(35); });
  checker.add_property("always_early", "G early");
  checker.bind_trigger(clk.posedge_event());
  checker.set_stop_on_violation(true);
  sim.run(sim::Time::us(1));
  // Violated at the 4th posedge (t=40ns); simulation stops there.
  EXPECT_EQ(sim.now(), sim::Time::ns(40));
  EXPECT_TRUE(checker.any_violated());
}

TEST_P(CheckerTest, ResetMonitorsClearsVerdicts) {
  TemporalChecker checker(sim, "sctc", GetParam());
  bool ok = true;
  checker.register_proposition("ok", [&ok] { return ok; });
  checker.add_property("inv", "G ok");
  ok = false;
  checker.step_all();
  EXPECT_TRUE(checker.any_violated());
  checker.reset_monitors();
  EXPECT_EQ(checker.pending_count(), 1u);
  EXPECT_EQ(checker.steps(), 0u);
  ok = true;
  checker.step_all();
  EXPECT_EQ(checker.pending_count(), 1u);
}

TEST_P(CheckerTest, ReportMentionsEveryProperty) {
  TemporalChecker checker(sim, "sctc", GetParam());
  checker.register_proposition("a", [] { return true; });
  checker.add_property("first", "G a");
  checker.add_property("second", "F a");
  checker.step_all();
  const std::string report = checker.report();
  EXPECT_NE(report.find("first"), std::string::npos);
  EXPECT_NE(report.find("second"), std::string::npos);
  EXPECT_NE(report.find("validated"), std::string::npos);
}

TEST_P(CheckerTest, PslDialectSupported) {
  TemporalChecker checker(sim, "sctc", GetParam());
  bool req = false;
  bool ack = false;
  checker.register_proposition("req", [&req] { return req; });
  checker.register_proposition("ack", [&ack] { return ack; });
  checker.add_property("response", "always (req -> eventually! ack)",
                       temporal::Dialect::kPsl);
  req = true;
  checker.step_all();
  req = false;
  checker.step_all();
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kPending);
}

INSTANTIATE_TEST_SUITE_P(Modes, CheckerTest,
                         ::testing::Values(MonitorMode::kProgression,
                                           MonitorMode::kSynthesizedAutomaton,
                                           MonitorMode::kCompiled,
                                           MonitorMode::kBoth),
                         [](const ::testing::TestParamInfo<MonitorMode>& info) {
                           return monitor_mode_name(info.param);
                         });

TEST(CheckerModeTest, AutomatonModeRecordsStateCount) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc", MonitorMode::kSynthesizedAutomaton);
  checker.register_proposition("a", [] { return true; });
  checker.add_property("bounded", "F[50] a");
  EXPECT_GT(checker.properties()[0].automaton_states, 50u);
}

TEST(CheckerModeTest, ModeNamesRoundTrip) {
  for (const MonitorMode mode :
       {MonitorMode::kProgression, MonitorMode::kSynthesizedAutomaton,
        MonitorMode::kCompiled, MonitorMode::kBoth}) {
    const auto parsed = parse_monitor_mode(monitor_mode_name(mode));
    ASSERT_TRUE(parsed.has_value()) << monitor_mode_name(mode);
    EXPECT_EQ(*parsed, mode);
  }
  // The CLI spelling "interpreted" is an alias for the progression rewriter.
  EXPECT_EQ(parse_monitor_mode("interpreted"), MonitorMode::kProgression);
  EXPECT_EQ(parse_monitor_mode("bogus"), std::nullopt);
}

// --- EswMonitor (handshake protocol, Fig. 3) ---------------------------------

class HandshakeMemory : public MemoryReadInterface {
 public:
  std::uint32_t sctc_read_uint(std::uint32_t address) const override {
    if (address == kFlagAddress) return flag ? 1 : 0;
    if (address == kVarAddress) return var;
    return 0;
  }
  static constexpr std::uint32_t kFlagAddress = 0x1000;
  static constexpr std::uint32_t kVarAddress = 0x1004;
  bool flag = false;
  std::uint32_t var = 0;
};

TEST(EswMonitorTest, WaitsForFlagBeforeInstantiatingProperties) {
  sim::Simulation sim;
  sim::Clock clk(sim, "clk", sim::Time::ns(10));
  HandshakeMemory mem;
  bool setup_ran = false;
  EswMonitor monitor(
      sim, "esw", clk.posedge_event(), mem, HandshakeMemory::kFlagAddress,
      [&](TemporalChecker& checker) {
        setup_ran = true;
        checker.register_proposition(
            "var_ok", std::make_unique<MemoryWordProposition>(
                          mem, HandshakeMemory::kVarAddress, Compare::kLt, 10));
        checker.add_property("inv", "G var_ok");
      });
  // Software initializes its flag only at 55 ns.
  sim.spawn("sw", [](sim::Simulation& s, HandshakeMemory& m) -> sim::Task {
    co_await s.delay(sim::Time::ns(55));
    m.flag = true;
  }(sim, mem));

  sim.run(sim::Time::ns(50));
  EXPECT_FALSE(monitor.initialized());
  EXPECT_FALSE(setup_ran);
  EXPECT_EQ(monitor.checker().steps(), 0u);

  sim.run(sim::Time::ns(200));
  EXPECT_TRUE(monitor.initialized());
  EXPECT_TRUE(setup_ran);
  // Flag observed at the 60 ns posedge; monitoring starts with the 70 ns
  // posedge: 14 remaining edges up to 200 ns.
  EXPECT_EQ(monitor.handshake_steps(), 6u);
  EXPECT_EQ(monitor.checker().steps(), 14u);
  EXPECT_EQ(monitor.checker().pending_count(), 1u);
}

TEST(EswMonitorTest, DetectsViolationOfMemoryBackedProperty) {
  sim::Simulation sim;
  sim::Clock clk(sim, "clk", sim::Time::ns(10));
  HandshakeMemory mem;
  mem.flag = true;  // software ready from the start
  EswMonitor monitor(
      sim, "esw", clk.posedge_event(), mem, HandshakeMemory::kFlagAddress,
      [&](TemporalChecker& checker) {
        checker.register_proposition(
            "var_ok", std::make_unique<MemoryWordProposition>(
                          mem, HandshakeMemory::kVarAddress, Compare::kLt, 10));
        checker.add_property("inv", "G var_ok");
      });
  sim.spawn("sw", [](sim::Simulation& s, HandshakeMemory& m) -> sim::Task {
    co_await s.delay(sim::Time::ns(95));
    m.var = 42;  // violates var < 10
  }(sim, mem));
  sim.run(sim::Time::us(1));
  EXPECT_TRUE(monitor.checker().any_violated());
  EXPECT_EQ(monitor.checker().properties()[0].decided_at_time,
            sim::Time::ns(100));
}

}  // namespace
}  // namespace esv::sctc

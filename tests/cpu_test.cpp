// Tests for the code generator and the microprocessor model. The reference
// semantics is the derived-model interpreter: a parameterized differential
// suite runs the same programs on both platforms and compares all globals.
#include <gtest/gtest.h>

#include "cpu/codegen.hpp"
#include "cpu/cpu.hpp"
#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "flash/flash_controller.hpp"
#include "minic/sema.hpp"
#include "sctc/esw_monitor.hpp"

namespace esv::cpu {
namespace {

/// Runs `source` on the CPU until it halts (with a cycle budget).
struct CpuRunner {
  explicit CpuRunner(const std::string& source,
                     minic::InputProvider* provider = nullptr)
      : program(minic::compile(source)),
        image(compile_to_image(program)),
        memory(0x10000),
        clock(sim, "clk", sim::Time::ns(10)),
        core(sim, "cpu", image, memory,
             provider != nullptr ? *provider : zero_inputs, clock) {}

  void run(sim::Time budget = sim::Time::ms(10)) {
    sim.run(budget);
    ASSERT_TRUE(core.halted()) << "CPU did not halt within the budget";
  }

  std::uint32_t global(const std::string& name) const {
    return memory.sctc_read_uint(program.find_global(name)->address);
  }

  minic::Program program;
  CodeImage image;
  sim::Simulation sim;
  mem::AddressSpace memory;
  minic::ZeroInputProvider zero_inputs;
  sim::Clock clock;
  Cpu core;
};

TEST(CodegenTest, DisassembleShowsFunctionsAndMnemonics) {
  minic::Program program = minic::compile(
      "int x; void main(void) { x = 1 + 2; }");
  CodeImage image = compile_to_image(program);
  const std::string dis = image.disassemble();
  EXPECT_NE(dis.find("main:"), std::string::npos);
  EXPECT_NE(dis.find("pushi"), std::string::npos);
  EXPECT_NE(dis.find("stg"), std::string::npos);
  EXPECT_NE(dis.find("ret"), std::string::npos);
}

TEST(CodegenTest, EntryPcPointsAtMain) {
  minic::Program program = minic::compile(
      "void helper(void) {} void main(void) { helper(); }");
  CodeImage image = compile_to_image(program);
  const auto main_index =
      static_cast<std::size_t>(program.find_function("main")->index);
  EXPECT_EQ(image.entry_pc, image.functions[main_index].entry_pc);
  EXPECT_NE(image.entry_pc, 0u);  // helper was emitted first
}

TEST(CpuTest, HaltsAfterMainReturns) {
  CpuRunner r("int x; void main(void) { x = 5; }");
  r.run();
  EXPECT_EQ(r.global("x"), 5u);
  EXPECT_FALSE(r.core.trapped());
  EXPECT_GT(r.core.instructions_retired(), 0u);
  // Memory instructions cost wait states: cycles strictly exceed instructions.
  EXPECT_GT(r.core.cycles_consumed(), r.core.instructions_retired());
}

TEST(CpuTest, FnameFollowsCallsAndReturns) {
  CpuRunner r(R"(
    int seen_helper; int seen_main;
    void helper(void) { seen_helper = fname; }
    void main(void) {
      helper();
      seen_main = fname;
    }
  )");
  r.run();
  EXPECT_EQ(r.global("seen_helper"), r.program.fname_id("helper"));
  EXPECT_EQ(r.global("seen_main"), r.program.fname_id("main"));
}

TEST(CpuTest, TrapOnAssertFailure) {
  CpuRunner r("int x; void main(void) { assert(x == 1); }");
  r.sim.run(sim::Time::ms(1));
  EXPECT_TRUE(r.core.trapped());
  EXPECT_NE(r.core.trap_message().find("assertion failed"), std::string::npos);
}

TEST(CpuTest, TrapOnDivisionByZero) {
  CpuRunner r("int x; void main(void) { x = 1 / x; }");
  r.sim.run(sim::Time::ms(1));
  EXPECT_TRUE(r.core.trapped());
  EXPECT_NE(r.core.trap_message().find("division"), std::string::npos);
}

TEST(CpuTest, TrapOnMemoryFault) {
  CpuRunner r("int x; void main(void) { x = *(0xE0000000); }");
  r.sim.run(sim::Time::ms(1));
  EXPECT_TRUE(r.core.trapped());
  EXPECT_NE(r.core.trap_message().find("memory fault"), std::string::npos);
}

TEST(CpuTest, ResetRestartsExecution) {
  CpuRunner r("int x; void main(void) { x = x + 1; }");
  r.run();
  EXPECT_EQ(r.global("x"), 1u);
  r.core.reset();
  EXPECT_FALSE(r.core.halted());
  while (r.core.step_instruction()) {
  }
  EXPECT_EQ(r.global("x"), 1u);
}

TEST(CpuTest, ScriptedInputsReachTheCore) {
  class Script : public minic::InputProvider {
   public:
    std::uint32_t input(int, const std::string&) override { return 9; }
  };
  Script script;
  CpuRunner r("int x; void main(void) { x = __in(a) + __in(a); }", &script);
  r.run();
  EXPECT_EQ(r.global("x"), 18u);
}

TEST(CpuTest, DrivesFlashController) {
  flash::FlashConfig cfg;
  cfg.pages = 2;
  cfg.words_per_page = 4;
  cfg.program_busy_ticks = 3;
  flash::FlashController flash_dev(cfg);
  CpuRunner r(R"(
    unsigned status;
    void main(void) {
      *(0xF0000004) = 4;        // ADDR
      *(0xF0000008) = 0x5A;     // DATA
      *(0xF0000000) = 2;        // CMD = PROGRAM
      while ((*(0xF000000C) & 1) == 1) { }
      status = *(0xF000000C);
    }
  )");
  r.memory.map_device(0xF0000000, flash_dev.window_bytes(), flash_dev);
  r.run();
  EXPECT_EQ(flash_dev.word_at(4), 0x5Au);
  EXPECT_FALSE(flash_dev.error());
}

// --- differential suite: CPU vs derived-model interpreter --------------------

struct DiffCase {
  const char* name;
  const char* source;
  std::vector<const char*> observables;
};

class CpuVsEswTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(CpuVsEswTest, GlobalsAgree) {
  const DiffCase& tc = GetParam();

  // Reference: derived-model interpreter.
  minic::Program program_a = minic::compile(tc.source);
  esw::EswProgram lowered = esw::lower_program(program_a);
  mem::AddressSpace mem_a(0x10000);
  minic::ZeroInputProvider in_a;
  esw::Interpreter interp(program_a, lowered, mem_a, in_a);
  interp.run(1000000);
  ASSERT_TRUE(interp.finished());

  // Subject: compiled image on the CPU.
  CpuRunner r(tc.source);
  r.run();

  for (const char* name : tc.observables) {
    EXPECT_EQ(r.global(name), interp.global(name))
        << tc.name << ": global " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, CpuVsEswTest,
    ::testing::Values(
        DiffCase{"arith",
                 "int a; int b; int c;"
                 "void main(void) { a = 7*3+2; b = (a-5)/4; c = a % 5; }",
                 {"a", "b", "c"}},
        DiffCase{"signed_ops",
                 "int a; int b; int c;"
                 "void main(void) { a = -7 / 2; b = -7 % 2; c = -1 < 0; }",
                 {"a", "b", "c"}},
        DiffCase{"bitops",
                 "int a; int b; int c; int d;"
                 "void main(void) { a = 0xF0 | 0x0F; b = a & 0x3C; "
                 "c = a ^ b; d = ~a & 0xFF; }",
                 {"a", "b", "c", "d"}},
        DiffCase{"shifts",
                 "int a; int b;"
                 "void main(void) { a = 1 << 10; b = a >> 3; }",
                 {"a", "b"}},
        DiffCase{"short_circuit",
                 // No calls on short-circuited sides (the derivation rejects
                 // them); instead check normalization and that the guarded
                 // division is never evaluated.
                 "int a; int r1; int r2; int r3; int r4; int r5;"
                 "void main(void) {"
                 "  a = 0;"
                 "  r1 = 0 && 5;"
                 "  r2 = 2 && 9;"      // normalized to 1
                 "  r3 = 0 || 7;"      // normalized to 1
                 "  r4 = 0 || 0;"
                 "  r5 = a && (1 / a);"  // short-circuit avoids the trap
                 "}",
                 {"r1", "r2", "r3", "r4", "r5"}},
        DiffCase{"loops",
                 "int sum; int prod;"
                 "void main(void) {"
                 "  int i; sum = 0; prod = 1;"
                 "  for (i = 1; i <= 8; i++) { sum += i; }"
                 "  i = 1; while (i <= 5) { prod = prod * i; i++; }"
                 "}",
                 {"sum", "prod"}},
        DiffCase{"switch_fallthrough",
                 "int r0; int r1; int r5;"
                 "int f(int v) { int r; r = 0; switch (v) {"
                 "  case 0: r = 10; break; case 1: case 2: r = 20; break;"
                 "  default: r = 99; } return r; }"
                 "void main(void) { r0 = f(0); r1 = f(1); r5 = f(5); }",
                 {"r0", "r1", "r5"}},
        DiffCase{"recursion",
                 "int result;"
                 "int fib(int n) { if (n < 2) { return n; }"
                 "  int a = fib(n-1); int b = fib(n-2); return a + b; }"
                 "void main(void) { result = fib(12); }",
                 {"result"}},
        DiffCase{"arrays",
                 "int t[6]; int sum;"
                 "void main(void) { int i;"
                 "  for (i = 0; i < 6; i++) { t[i] = i * 3; }"
                 "  sum = 0;"
                 "  for (i = 0; i < 6; i++) { sum += t[i]; } }",
                 {"sum"}},
        DiffCase{"ternary_nested",
                 "int a; int b;"
                 "void main(void) { int x; x = 7;"
                 "  a = x > 5 ? (x > 6 ? 1 : 2) : 3;"
                 "  b = x < 5 ? 4 : x == 7 ? 5 : 6; }",
                 {"a", "b"}},
        DiffCase{"globals_init",
                 "enum { SEED = 3 }; int x = SEED; int y = 0x20;"
                 "int t[3] = {9, 8}; int out;"
                 "void main(void) { out = x + y + t[0] + t[1] + t[2]; }",
                 {"out"}},
        DiffCase{"do_while_continue",
                 "int n; int odd_sum;"
                 "void main(void) { n = 0; odd_sum = 0;"
                 "  do { n++; if (n % 2 == 0) { continue; } odd_sum += n; }"
                 "  while (n < 9); }",
                 {"n", "odd_sum"}}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.name;
    });

// --- approach-1 integration: SCTC on the CPU clock ---------------------------

TEST(Approach1Test, EswMonitorHandshakeAndProperty) {
  const char* source = R"(
    bool flag;
    int var1;
    void test1(void) { var1 = var1 + 1; }
    void main(void) {
      flag = true;        // protocol: software initialized
      var1 = 0;
      while (var1 < 20) { test1(); }
    }
  )";
  minic::Program program = minic::compile(source);
  CodeImage image = compile_to_image(program);
  sim::Simulation sim;
  mem::AddressSpace memory(0x10000);
  minic::ZeroInputProvider inputs;
  sim::Clock clock(sim, "clk", sim::Time::ns(10));
  Cpu core(sim, "cpu", image, memory, inputs, clock);

  const std::uint32_t var1_addr = program.find_global("var1")->address;
  const std::uint32_t flag_addr = program.find_global("flag")->address;

  sctc::EswMonitor monitor(
      sim, "esw", clock.posedge_event(), memory, flag_addr,
      [&](sctc::TemporalChecker& checker) {
        checker.register_proposition(
            "var1_done", std::make_unique<sctc::MemoryWordProposition>(
                             memory, var1_addr, sctc::Compare::kGe, 20));
        checker.register_proposition(
            "in_test1", std::make_unique<sctc::MemoryWordProposition>(
                            memory, program.fname_address, sctc::Compare::kEq,
                            program.fname_id("test1")));
        checker.add_property("reaches20", "F var1_done");
        checker.add_property("test1_runs", "F in_test1");
      });

  sim.run(sim::Time::ms(10));
  EXPECT_TRUE(core.halted());
  EXPECT_TRUE(monitor.initialized());
  EXPECT_EQ(monitor.checker().validated_count(), 2u);
}

}  // namespace
}  // namespace esv::cpu

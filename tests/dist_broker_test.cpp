// End-to-end tests of the distributed campaign broker: spawns real
// esv-worker processes (ESV_WORKER_BIN, injected by the build) and checks
// the two load-bearing properties of docs/DISTRIBUTED.md —
//
//   determinism: every deterministic rendering (verdict table, summary,
//   timing-free JSON, merged metrics) is byte-identical for any --workers
//   count and identical to the in-process runner;
//
//   crash isolation: a worker killed mid-campaign (SIGKILL, via the
//   ESV_WORKER_TEST_CRASH_SEED hook) never fails the campaign — its seeds
//   are re-dispatched under the --seed-retries budget and the final report
//   is byte-identical to an undisturbed run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "campaign/campaign.hpp"
#include "dist/broker.hpp"

namespace esv::dist {
namespace {

const char* kBlinker = R"(
enum { LED_OFF = 0, LED_ON = 1 };

int led;
int cycles;

void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) {
      led = LED_ON;
    } else {
      led = LED_OFF;
    }
  } else {
    led = LED_OFF;
  }
}

void main(void) {
  led = LED_OFF;
  while (cycles < 150) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kBlinkerSpec = R"(
input enable 0 1

prop led_on    = led == LED_ON
prop led_off   = led == LED_OFF
prop finished  = cycles >= 150

check legal: G (led_on || led_off)
check terminates: F finished
)";

campaign::CampaignConfig blinker_config(std::uint64_t lo, std::uint64_t hi,
                                        unsigned workers) {
  campaign::CampaignConfig config;
  config.program_source = kBlinker;
  config.spec_text = kBlinkerSpec;
  config.seed_lo = lo;
  config.seed_hi = hi;
  config.jobs = 1;
  config.workers = workers;
  config.worker_binary = ESV_WORKER_BIN;
  config.collect_metrics = true;
  return config;
}

void expect_same_deterministic_renderings(const campaign::CampaignReport& a,
                                          const campaign::CampaignReport& b) {
  EXPECT_EQ(a.verdict_table(), b.verdict_table());
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.to_json(/*include_timing=*/false),
            b.to_json(/*include_timing=*/false));
  EXPECT_EQ(a.metrics.to_json(/*include_timing=*/false),
            b.metrics.to_json(/*include_timing=*/false));
}

TEST(DistBrokerTest, DeterministicAcrossWorkerCountsAndInProcess) {
  campaign::CampaignConfig in_process = blinker_config(1, 10, 0);
  const campaign::CampaignReport reference = campaign::run(in_process);

  const campaign::CampaignReport one = run_distributed(blinker_config(1, 10, 1));
  const campaign::CampaignReport four =
      run_distributed(blinker_config(1, 10, 4));

  expect_same_deterministic_renderings(reference, one);
  expect_same_deterministic_renderings(reference, four);

  EXPECT_FALSE(reference.distributed);
  EXPECT_TRUE(one.distributed);
  EXPECT_TRUE(four.distributed);
  EXPECT_EQ(one.workers, 1u);
  EXPECT_EQ(four.workers, 4u);
  // The broker's operational counters live in dist_metrics only; the
  // deterministic snapshot must stay free of them.
  EXPECT_NE(four.dist_metrics.counters.count("dist.results_rx"), 0u);
  EXPECT_EQ(reference.metrics.counters.count("dist.results_rx"), 0u);
  EXPECT_NE(four.dist_events_jsonl.find("\"event\":\"spawn\""),
            std::string::npos);
}

// workers x jobs composed: multi-threaded workers connect nearly
// simultaneously, which is the shape that once dangled poll_io's pre-HELLO
// connection pointers when an accept reallocated the pending list.
TEST(DistBrokerTest, MultiThreadedWorkersStayDeterministic) {
  campaign::CampaignConfig in_process = blinker_config(1, 12, 0);
  const campaign::CampaignReport reference = campaign::run(in_process);
  campaign::CampaignConfig config = blinker_config(1, 12, 4);
  config.jobs = 2;
  const campaign::CampaignReport distributed = run_distributed(config);
  expect_same_deterministic_renderings(reference, distributed);
  EXPECT_EQ(distributed.error_seeds, 0u);
}

TEST(DistBrokerTest, FaultCampaignMatchesInProcess) {
  campaign::CampaignConfig config = blinker_config(1, 6, 0);
  config.fault_plan_text = "bitflip led window 40..45 prob 1/2\n";
  const campaign::CampaignReport reference = campaign::run(config);

  config.workers = 2;
  const campaign::CampaignReport distributed = run_distributed(config);
  expect_same_deterministic_renderings(reference, distributed);
  EXPECT_TRUE(distributed.fault_campaign);
  EXPECT_EQ(distributed.injected_faults_total,
            reference.injected_faults_total);
}

class CrashHookGuard {
 public:
  CrashHookGuard(std::uint64_t seed, const std::string& latch) {
    ::unlink(latch.c_str());
    ::setenv("ESV_WORKER_TEST_CRASH_SEED", std::to_string(seed).c_str(), 1);
    ::setenv("ESV_WORKER_TEST_CRASH_LATCH", latch.c_str(), 1);
  }
  ~CrashHookGuard() {
    ::unsetenv("ESV_WORKER_TEST_CRASH_SEED");
    ::unsetenv("ESV_WORKER_TEST_CRASH_LATCH");
  }
};

TEST(DistBrokerTest, KilledWorkerNeverFailsTheCampaign) {
  const campaign::CampaignReport undisturbed =
      run_distributed(blinker_config(1, 8, 2));

  campaign::CampaignConfig config = blinker_config(1, 8, 2);
  config.seed_retries = 1;
  const std::string latch =
      testing::TempDir() + "esv_dist_crash_latch_" + std::to_string(::getpid());
  campaign::CampaignReport crashed;
  {
    CrashHookGuard guard(5, latch);
    crashed = run_distributed(config);
  }
  ::unlink(latch.c_str());

  // The kill really happened ...
  EXPECT_NE(crashed.dist_metrics.counters["dist.worker_exits"], 0u);
  // ... and the victim's seeds moved elsewhere. Usually that is the crash
  // re-dispatch path, but under load a steal may have already moved the
  // crash seed off the victim's broker-side list before it died — either
  // way a recovery transfer must be visible.
  EXPECT_NE(crashed.dist_metrics.counters["dist.redispatched_seeds"] +
                crashed.dist_metrics.counters["dist.stolen_seeds"],
            0u);
  // ... and left no trace in the results: every seed completed, nothing
  // errored, and every deterministic rendering is byte-identical to the
  // undisturbed run.
  EXPECT_EQ(crashed.error_seeds, 0u);
  expect_same_deterministic_renderings(undisturbed, crashed);
}

TEST(DistBrokerTest, CrashBeyondRetryBudgetBecomesInfrastructureError) {
  campaign::CampaignConfig config = blinker_config(1, 6, 2);
  config.seed_retries = 0;  // first crash already exhausts the budget
  const std::string latch = testing::TempDir() + "esv_dist_budget_latch_" +
                            std::to_string(::getpid());
  campaign::CampaignReport report;
  {
    CrashHookGuard guard(3, latch);
    report = run_distributed(config);
  }
  ::unlink(latch.c_str());

  // The campaign still completes. The crashed seed is charged as an
  // infrastructure error; any other seed that was in flight on the killed
  // worker may be charged too, but never more than that.
  ASSERT_EQ(report.seeds.size(), 6u);
  const campaign::SeedResult& victim = report.seeds[2];
  EXPECT_EQ(victim.seed, 3u);
  EXPECT_EQ(victim.error_kind, "infrastructure");
  EXPECT_NE(victim.error.find("worker crashed"), std::string::npos);
  EXPECT_GE(report.error_seeds, 1u);
  std::uint64_t completed = 0;
  for (const campaign::SeedResult& seed : report.seeds) {
    if (seed.error.empty()) {
      ++completed;
      EXPECT_TRUE(seed.finished);  // survivors ran to completion
    } else {
      EXPECT_EQ(seed.error_kind, "infrastructure");
    }
  }
  EXPECT_EQ(completed + report.error_seeds, report.seed_count());
}

TEST(DistBrokerTest, UnresolvableWorkerBinaryIsAConfigurationError) {
  campaign::CampaignConfig config = blinker_config(1, 2, 2);
  config.worker_binary = "/nonexistent/esv-worker";
  EXPECT_THROW(run_distributed(config), std::invalid_argument);
}

TEST(DistBrokerTest, WorkerThatDiesOnStartupDegradesToInProcess) {
  // Graceful degradation (docs/RESILIENCE.md): every slot exhausts its
  // respawn budget without ever connecting, so the broker finishes the
  // seeds itself on --jobs threads — real results, not abandonment, and
  // byte-identical to a healthy run.
  const campaign::CampaignReport healthy =
      run_distributed(blinker_config(1, 4, 2));

  campaign::CampaignConfig config = blinker_config(1, 4, 2);
  config.worker_binary = "/bin/false";  // executes, exits, never connects
  BrokerOptions options;
  options.max_respawns = 1;
  const campaign::CampaignReport report = run_distributed(config, options);
  ASSERT_EQ(report.seeds.size(), 4u);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.error_seeds, 0u);
  EXPECT_NE(report.dist_metrics.counters.at("dist.degradations"), 0u);
  expect_same_deterministic_renderings(healthy, report);
}

TEST(DistBrokerTest, WorkerThatDiesOnStartupAbandonsWhenDegradationIsOff) {
  campaign::CampaignConfig config = blinker_config(1, 4, 2);
  config.worker_binary = "/bin/false";  // executes, exits, never connects
  BrokerOptions options;
  options.max_respawns = 1;
  options.degrade_in_process = false;
  const campaign::CampaignReport report = run_distributed(config, options);
  // Nothing hangs, nothing throws: every seed is an infrastructure error.
  ASSERT_EQ(report.seeds.size(), 4u);
  EXPECT_EQ(report.error_seeds, 4u);
  EXPECT_FALSE(report.degraded);
  for (const campaign::SeedResult& seed : report.seeds) {
    EXPECT_EQ(seed.error_kind, "infrastructure");
  }
  EXPECT_NE(report.dist_metrics.counters.at("dist.abandoned_seeds"), 0u);
}

TEST(DistBrokerTest, CampaignDeadlineAbortsWithStructuredCaptures) {
  campaign::CampaignConfig config = blinker_config(1, 64, 2);
  config.campaign_timeout_seconds = 0.000001;  // expires immediately
  const campaign::CampaignReport report = run_distributed(config);
  EXPECT_TRUE(report.deadline_exceeded);
  ASSERT_EQ(report.seeds.size(), 64u);
  std::uint64_t deadline_seeds = 0;
  for (const campaign::SeedResult& seed : report.seeds) {
    if (seed.error.find("--campaign-timeout") != std::string::npos) {
      EXPECT_EQ(seed.error_kind, "infrastructure");
      ++deadline_seeds;
    }
  }
  // The deadline fired before the fleet finished: at least one seed carries
  // the deterministic deadline capture, and every slot is filled.
  EXPECT_GE(deadline_seeds, 1u);
  EXPECT_NE(report.dist_metrics.counters.count("dist.deadline_aborts"), 0u);
}

// SIGPIPE hardening (the worker ignores it at startup): a worker whose
// broker socket vanishes mid-conversation must exit in a structured way,
// not die of SIGPIPE. The broker path proves it end to end: kill the broker
// side of the pair by finishing the campaign early while a straggler
// respawned worker is still handshaking — covered implicitly above — so
// here it is enough that a full campaign under worker churn never records
// a SIGPIPE death (signal 13) in its worker-exit events.
TEST(DistBrokerTest, WorkerChurnNeverDiesOfSigpipe) {
  campaign::CampaignConfig config = blinker_config(1, 8, 2);
  config.seed_retries = 1;
  const std::string latch = testing::TempDir() + "esv_dist_sigpipe_latch_" +
                            std::to_string(::getpid());
  campaign::CampaignReport report;
  {
    CrashHookGuard guard(4, latch);
    report = run_distributed(config);
  }
  ::unlink(latch.c_str());
  EXPECT_EQ(report.dist_events_jsonl.find("killed by signal 13"),
            std::string::npos);
  EXPECT_EQ(report.error_seeds, 0u);
}

}  // namespace
}  // namespace esv::dist

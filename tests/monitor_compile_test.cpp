// Compiled-monitor tests (docs/MONITORS.md): the flat-transition-table
// lowering must be observationally identical to the interpreted progression
// monitor and to the closure-based AutomatonMonitor it is lowered from —
// verdict for verdict, state for state, and obligation for obligation.
//
// Three layers are covered here:
//   - table-layout unit tests against a known small property,
//   - a differential fuzz suite over random FLTL formulas and traces
//     (same generator shape as temporal_semantics_fuzz_test, including
//     zero-bound windows and end-of-trace resolution at every position),
//   - checker-level `both` mode: a correct build never diverges, and a
//     deliberately corrupted compiled monitor is reported as a first-class
//     monitor error through divergences(), metrics, trace, and report().
//
// The allocation test at the bottom replaces the global operator new/delete
// with counting versions (this test binary only) to pin down the compiled
// mode's zero-allocation steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sctc/checker.hpp"
#include "temporal/automaton.hpp"
#include "temporal/compiled.hpp"
#include "temporal/monitor.hpp"
#include "temporal/parser.hpp"

// --- counting allocator ------------------------------------------------------
// Every path through the replaced operators must stay allocation-free itself;
// the counter is a relaxed atomic so the hooks work under TSan too.

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace esv::temporal {
namespace {

using Trace = std::vector<std::vector<bool>>;  // trace[i][prop]

PropWord word_of(const std::vector<bool>& step) {
  PropWord word = 0;
  for (std::size_t i = 0; i < step.size(); ++i) {
    if (step[i]) word |= PropWord{1} << i;
  }
  return word;
}

PropValuation valuation_of(const std::vector<bool>& step) {
  return [&step](int index) {
    return step[static_cast<std::size_t>(index)];
  };
}

// --- table layout ------------------------------------------------------------

TEST(CompiledTableTest, LayoutMatchesSourceAutomaton) {
  FormulaFactory factory;
  FormulaRef formula = parse_fltl("G (req -> F[2] ack)", factory);
  const ArAutomaton automaton = synthesize(factory, formula);

  CompiledMonitorPool pool;
  CompiledMonitor monitor = pool.compile(automaton, factory);

  EXPECT_TRUE(monitor.valid());
  EXPECT_EQ(pool.monitor_count(), 1u);
  // Dense rows: one entry per (state, assignment) pair, 2 propositions.
  EXPECT_EQ(automaton.assignment_count(), 4u);
  EXPECT_EQ(pool.table_entries(),
            automaton.state_count() * automaton.assignment_count());
  // State numbering is preserved exactly, including the initial state and
  // its obligation (the property formula itself — pointer-equal through the
  // hash-consing factory).
  EXPECT_EQ(monitor.state(), automaton.initial());
  EXPECT_EQ(monitor.obligation(), formula);
  EXPECT_EQ(monitor.verdict(), Verdict::kPending);
  EXPECT_EQ(monitor.steps(), 0u);
}

TEST(CompiledTableTest, StepWalksTheSameStatesAsAutomatonMonitor) {
  FormulaFactory factory;
  FormulaRef formula = parse_fltl("G (req -> F[2] ack)", factory);
  const ArAutomaton automaton = synthesize(factory, formula);

  CompiledMonitorPool pool;
  CompiledMonitor compiled = pool.compile(automaton, factory);
  AutomatonMonitor reference(automaton);

  // req fires, ack answers just inside the bound, then req fires again and
  // ack never comes: pending transitions followed by a violation.
  const Trace trace = {{true, false},  {false, false}, {false, true},
                       {true, false},  {false, false}, {false, false}};
  for (const auto& step : trace) {
    const Verdict expected = reference.step(valuation_of(step));
    EXPECT_EQ(compiled.step(word_of(step)), expected);
    EXPECT_EQ(compiled.state(), reference.state());
    EXPECT_EQ(compiled.obligation(),
              automaton.states()[reference.state()].obligation);
  }
  EXPECT_EQ(compiled.verdict(), Verdict::kViolated);
  // Sinks self-loop and decided monitors stop counting steps.
  const std::uint64_t decided_steps = compiled.steps();
  compiled.step(word_of({true, true}));
  EXPECT_EQ(compiled.verdict(), Verdict::kViolated);
  EXPECT_EQ(compiled.steps(), decided_steps);
}

TEST(CompiledTableTest, EndOfTraceVerdictsArePrecomputed) {
  FormulaFactory factory;
  // Strong operator: fails if the trace ends now.
  FormulaRef eventually = parse_fltl("F[2] ack", factory);
  // Weak operator: holds if the trace ends now.
  FormulaRef always = parse_fltl("G req", factory);

  CompiledMonitorPool pool;
  CompiledMonitor f_monitor =
      pool.compile(synthesize(factory, eventually), factory);
  CompiledMonitor g_monitor =
      pool.compile(synthesize(factory, always), factory);

  EXPECT_EQ(f_monitor.verdict_at_end(), Verdict::kViolated);
  EXPECT_EQ(g_monitor.verdict_at_end(), Verdict::kValidated);

  // After ack the F is validated outright; verdict_at_end follows suit.
  // ("F[2] ack" was parsed first, so ack is factory index 0: word bit 0.)
  f_monitor.step(0b01);
  EXPECT_EQ(f_monitor.verdict(), Verdict::kValidated);
  EXPECT_EQ(f_monitor.verdict_at_end(), Verdict::kValidated);
}

TEST(CompiledTableTest, ResetRestoresTheInitialState) {
  FormulaFactory factory;
  FormulaRef formula = parse_fltl("F[1] go", factory);
  const ArAutomaton automaton = synthesize(factory, formula);
  CompiledMonitorPool pool;
  CompiledMonitor monitor = pool.compile(automaton, factory);

  monitor.step(0);  // go false
  monitor.step(0);  // bound expires: violated
  EXPECT_EQ(monitor.verdict(), Verdict::kViolated);
  monitor.reset();
  EXPECT_EQ(monitor.state(), automaton.initial());
  EXPECT_EQ(monitor.verdict(), Verdict::kPending);
  EXPECT_EQ(monitor.steps(), 0u);
  monitor.step(1);  // go true: validated this time
  EXPECT_EQ(monitor.verdict(), Verdict::kValidated);
}

TEST(CompiledTableTest, PoolKeepsMonitorsIndependent) {
  FormulaFactory factory;
  CompiledMonitorPool pool;
  CompiledMonitor first =
      pool.compile(synthesize(factory, parse_fltl("G a", factory)), factory);
  CompiledMonitor second =
      pool.compile(synthesize(factory, parse_fltl("F b", factory)), factory);
  EXPECT_EQ(pool.monitor_count(), 2u);

  // a stays true, b stays false: the first must remain pending while the
  // second is driven through its own table rows.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(first.step(/*a=*/0b01), Verdict::kPending);
    EXPECT_EQ(second.step(/*a=*/0b01), Verdict::kPending);
  }
  EXPECT_EQ(second.step(/*b=*/0b10), Verdict::kValidated);
  EXPECT_EQ(first.step(0b01), Verdict::kPending);
}

TEST(CompiledTableTest, PropositionIndexBeyondTheWordIsRejected) {
  FormulaFactory factory;
  for (int i = 0; i < kMaxPropWordBits; ++i) {
    factory.prop("p" + std::to_string(i));
  }
  FormulaRef formula = factory.prop("p64");  // factory index 64
  const ArAutomaton automaton = synthesize(factory, formula);
  CompiledMonitorPool pool;
  EXPECT_THROW(pool.compile(automaton, factory), CompileError);
}

TEST(CompiledTableTest, DefaultConstructedHandleIsInvalid) {
  CompiledMonitor monitor;
  EXPECT_FALSE(monitor.valid());
}

// --- differential fuzz -------------------------------------------------------

/// Random formula generator, same shape as temporal_semantics_fuzz_test:
/// bounds drawn from [0, 5] (including the zero-bound edge case F[0]/G[0]),
/// X with offsets 1-3, and all binary temporal operators.
FormulaRef random_formula(FormulaFactory& f, common::Rng& rng, int props,
                          int depth) {
  if (depth == 0 || rng.next_chance(1, 4)) {
    switch (rng.next_below(4)) {
      case 0: return f.constant(rng.next_chance(1, 2));
      default:
        return f.prop("p" + std::to_string(rng.next_below(
                                static_cast<std::uint64_t>(props))));
    }
  }
  const auto sub = [&] { return random_formula(f, rng, props, depth - 1); };
  const auto maybe_bound = [&]() -> std::optional<std::uint32_t> {
    if (rng.next_chance(1, 2)) return std::nullopt;
    return static_cast<std::uint32_t>(rng.next_below(6));
  };
  switch (rng.next_below(9)) {
    case 0: return f.not_(sub());
    case 1: return f.and_(sub(), sub());
    case 2: return f.or_(sub(), sub());
    case 3: return f.implies(sub(), sub());
    case 4:
      return f.next(sub(), 1 + static_cast<std::uint32_t>(rng.next_below(3)));
    case 5: return f.eventually(sub(), maybe_bound());
    case 6: return f.always(sub(), maybe_bound());
    case 7: return f.until(sub(), sub(), maybe_bound());
    default: return f.release(sub(), sub(), maybe_bound());
  }
}

class CompiledFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CompiledFuzzTest, CompiledMatchesInterpretedTransitionForTransition) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xC0117 + 29);
  const int props = 2;

  for (int trial = 0; trial < 40; ++trial) {
    FormulaFactory factory;
    for (int p = 0; p < props; ++p) factory.prop("p" + std::to_string(p));
    FormulaRef formula = random_formula(factory, rng, props, 3);

    const std::size_t len = 1 + rng.next_below(10);
    Trace trace(len, std::vector<bool>(props));
    for (auto& step : trace) {
      for (int p = 0; p < props; ++p) {
        step[static_cast<std::size_t>(p)] = rng.next_chance(1, 2);
      }
    }

    // Keep worst-case trials cheap: random nesting of bounded operators can
    // make exhaustive progression enumerate a huge closure; such formulas
    // are skipped rather than synthesized for minutes.
    SynthesisOptions options;
    options.max_states = 1000;
    ArAutomaton automaton;
    try {
      automaton = synthesize(factory, formula, options);
    } catch (const SynthesisLimitError&) {
      continue;
    }
    CompiledMonitorPool pool;
    CompiledMonitor compiled = pool.compile(automaton, factory);
    AutomatonMonitor table(automaton);
    ProgressionMonitor interpreted(factory, formula);

    // Initial state: same obligation, same finite-trace resolution before
    // any step is consumed (the empty-trace edge case).
    ASSERT_EQ(compiled.obligation(), interpreted.current())
        << "formula: " << formula->to_string();
    ASSERT_EQ(compiled.verdict_at_end(), interpreted.verdict_at_end())
        << "formula: " << formula->to_string();

    for (std::size_t i = 0; i < len; ++i) {
      const Verdict expected = interpreted.step(valuation_of(trace[i]));
      const Verdict table_verdict = table.step(valuation_of(trace[i]));
      const Verdict got = compiled.step(word_of(trace[i]));

      // Verdict-for-verdict and transition-trace equality against both
      // independent implementations.
      ASSERT_EQ(got, expected)
          << "formula: " << formula->to_string() << "\ntrial " << trial
          << " step " << i;
      ASSERT_EQ(got, table_verdict)
          << "formula: " << formula->to_string() << "\ntrial " << trial
          << " step " << i;
      ASSERT_EQ(compiled.state(), table.state())
          << "formula: " << formula->to_string() << "\ntrial " << trial
          << " step " << i;
      ASSERT_EQ(compiled.obligation(), interpreted.current())
          << "formula: " << formula->to_string() << "\ntrial " << trial
          << " step " << i;
      // End-of-trace resolution must agree at *every* position, not just
      // where the random trace happens to stop.
      ASSERT_EQ(compiled.verdict_at_end(), interpreted.verdict_at_end())
          << "formula: " << formula->to_string() << "\ntrial " << trial
          << " step " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledFuzzTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace esv::temporal

// --- checker-level `both` mode ----------------------------------------------

namespace esv::sctc {
namespace {

using temporal::Verdict;

TEST(CheckerBothModeTest, LockstepRunNeverDiverges) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc", MonitorMode::kBoth);
  int x = 0;
  checker.register_proposition("small", [&x] { return x < 8; });
  checker.register_proposition("done", [&x] { return x == 5; });
  checker.add_property("stays_small", "G small");
  checker.add_property("finishes", "F done");
  checker.add_property("respond", "G (small -> F[10] done)");
  for (x = 0; x < 12; ++x) checker.step_all();

  EXPECT_EQ(checker.divergence_count(), 0u);
  EXPECT_TRUE(checker.divergences().empty());
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kViolated);
  EXPECT_EQ(checker.properties()[1].verdict(), Verdict::kValidated);
  EXPECT_EQ(checker.report().find("MONITOR-ERROR"), std::string::npos);
}

TEST(CheckerBothModeTest, CorruptedCompiledMonitorIsReportedAsDivergence) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc", MonitorMode::kBoth);
  obs::MetricsRegistry metrics;
  obs::TraceWriter trace;
  checker.set_metrics(&metrics);
  checker.set_trace(&trace);

  bool done = false;
  checker.register_proposition("done", [&done] { return done; });
  checker.add_property("finishes", "F done");
  checker.step_all();
  ASSERT_EQ(checker.divergence_count(), 0u);

  // "F done" has exactly two states: the pending obligation and the accept
  // sink. Forcing the compiled monitor into the other one guarantees the
  // next lockstep comparison trips.
  ASSERT_EQ(checker.properties()[0].automaton_states, 2u);
  checker.corrupt_compiled_for_test(
      0, 1u - checker.properties()[0].compiled.state());
  checker.step_all();

  ASSERT_EQ(checker.divergence_count(), 1u);
  EXPECT_NE(checker.divergences()[0].find("finishes"), std::string::npos);
  EXPECT_NE(checker.divergences()[0].find("diverged at step"),
            std::string::npos);
  EXPECT_TRUE(checker.properties()[0].diverged);
  // The reported verdict stays the interpreted oracle's.
  EXPECT_EQ(checker.properties()[0].verdict(), Verdict::kPending);
  // Surfaced through every observability channel.
  EXPECT_EQ(metrics.snapshot().counters.at("sctc.divergences"), 1u);
  EXPECT_NE(trace.text().find("\"type\":\"monitor_divergence\""),
            std::string::npos);
  EXPECT_NE(checker.report().find("MONITOR-ERROR"), std::string::npos);

  // First divergence per property wins; later steps don't re-report.
  checker.step_all();
  EXPECT_EQ(checker.divergence_count(), 1u);

  // reset_monitors clears the divergence state along with the verdicts.
  checker.reset_monitors();
  EXPECT_EQ(checker.divergence_count(), 0u);
  EXPECT_FALSE(checker.properties()[0].diverged);
}

TEST(CheckerBothModeTest, CorruptHookRequiresACompiledMonitor) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc", MonitorMode::kProgression);
  checker.register_proposition("a", [] { return true; });
  checker.add_property("inv", "G a");
  EXPECT_THROW(checker.corrupt_compiled_for_test(0, 1), std::logic_error);
}

// --- zero-allocation steady state -------------------------------------------

TEST(CompiledAllocationTest, SteadyStateSteppingIsAllocationFree) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc", MonitorMode::kCompiled);
  int tick = 0;
  checker.register_proposition("req", [&tick] { return tick % 16 == 0; });
  checker.register_proposition("ack", [&tick] { return tick % 16 == 5; });
  checker.register_proposition("err", [&tick] { return false; });
  // Stays pending forever and keeps moving through non-sink states, so the
  // measured loop exercises real transitions, not a decided monitor's
  // early-out.
  checker.add_property("respond", "G (req -> F[8] (ack || err))");
  checker.add_property("no_error", "G !err");

  // Warm-up: first steps may touch lazily allocated caches.
  for (; tick < 64; ++tick) checker.step_all();
  ASSERT_EQ(checker.pending_count(), 2u);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (; tick < 64 + 4096; ++tick) checker.step_all();
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in 4096 compiled-mode steps";
  EXPECT_EQ(checker.pending_count(), 2u);
  EXPECT_EQ(checker.steps(), 64u + 4096u);
}

}  // namespace
}  // namespace esv::sctc

// Tests for the FLTL and PSL property parsers.
#include <gtest/gtest.h>

#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "temporal/formula.hpp"
#include "temporal/parser.hpp"

namespace esv::temporal {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  FormulaFactory f;
};

// --- FLTL -------------------------------------------------------------------

TEST_F(ParserTest, FltlAtoms) {
  EXPECT_EQ(parse_fltl("true", f), f.constant(true));
  EXPECT_EQ(parse_fltl("false", f), f.constant(false));
  EXPECT_EQ(parse_fltl("Read", f), f.prop("Read"));
  EXPECT_EQ(parse_fltl("\"var1 == 0\"", f), f.prop("var1 == 0"));
}

TEST_F(ParserTest, FltlBooleanLayer) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  FormulaRef c = f.prop("c");
  EXPECT_EQ(parse_fltl("!a", f), f.not_(a));
  EXPECT_EQ(parse_fltl("a && b", f), f.and_(a, b));
  EXPECT_EQ(parse_fltl("a || b", f), f.or_(a, b));
  EXPECT_EQ(parse_fltl("a & b | c", f), f.or_(f.and_(a, b), c));
  EXPECT_EQ(parse_fltl("a -> b", f), f.implies(a, b));
  EXPECT_EQ(parse_fltl("a <-> b", f), f.iff(a, b));
  EXPECT_EQ(parse_fltl("a and b or c", f), f.or_(f.and_(a, b), c));
  EXPECT_EQ(parse_fltl("not a", f), f.not_(a));
}

TEST_F(ParserTest, FltlPrecedence) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  FormulaRef c = f.prop("c");
  // -> binds weakest and is right-associative.
  EXPECT_EQ(parse_fltl("a -> b -> c", f), f.implies(a, f.implies(b, c)));
  // ! binds tighter than &&.
  EXPECT_EQ(parse_fltl("!a && b", f), f.and_(f.not_(a), b));
  // U binds tighter than &&.
  EXPECT_EQ(parse_fltl("a U b && c", f), f.and_(f.until(a, b), c));
}

TEST_F(ParserTest, FltlTemporalOperators) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  EXPECT_EQ(parse_fltl("X a", f), f.next(a));
  EXPECT_EQ(parse_fltl("X[3] a", f), f.next(a, 3));
  EXPECT_EQ(parse_fltl("F a", f), f.eventually(a));
  EXPECT_EQ(parse_fltl("F[10] a", f), f.eventually(a, 10));
  EXPECT_EQ(parse_fltl("G a", f), f.always(a));
  EXPECT_EQ(parse_fltl("G[5] a", f), f.always(a, 5));
  EXPECT_EQ(parse_fltl("a U b", f), f.until(a, b));
  EXPECT_EQ(parse_fltl("a U[7] b", f), f.until(a, b, 7));
  EXPECT_EQ(parse_fltl("a R b", f), f.release(a, b));
  EXPECT_EQ(parse_fltl("a W b", f), f.weak_until(a, b));
}

TEST_F(ParserTest, FltlPaperPropertyShape) {
  // The paper's property (A): F (Read -> F[b] (EEE_OK || ...)).
  FormulaRef got = parse_fltl("F (Read -> F[1000] (EEE_OK || EEE_ERR))", f);
  FormulaRef want = f.eventually(
      f.implies(f.prop("Read"),
                f.eventually(f.or_(f.prop("EEE_OK"), f.prop("EEE_ERR")), 1000)));
  EXPECT_EQ(got, want);
}

TEST_F(ParserTest, FltlNestedTemporal) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  EXPECT_EQ(parse_fltl("G (a -> X F b)", f),
            f.always(f.implies(a, f.next(f.eventually(b)))));
  EXPECT_EQ(parse_fltl("F G a", f), f.eventually(f.always(a)));
}

TEST_F(ParserTest, FltlErrors) {
  EXPECT_THROW(parse_fltl("", f), ParseError);
  EXPECT_THROW(parse_fltl("a &&", f), ParseError);
  EXPECT_THROW(parse_fltl("(a", f), ParseError);
  EXPECT_THROW(parse_fltl("a b", f), ParseError);
  EXPECT_THROW(parse_fltl("F[", f), ParseError);
  EXPECT_THROW(parse_fltl("F[x] a", f), ParseError);
  EXPECT_THROW(parse_fltl("G[3 a", f), ParseError);
  EXPECT_THROW(parse_fltl("\"unterminated", f), ParseError);
  EXPECT_THROW(parse_fltl("a # b", f), ParseError);
  // Operator letters cannot be propositions.
  EXPECT_THROW(parse_fltl("F", f), ParseError);
  EXPECT_THROW(parse_fltl("X && a", f), ParseError);
}

TEST_F(ParserTest, FltlErrorPositionIsReported) {
  try {
    parse_fltl("a && %", f);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position(), 5u);
  }
}

// --- PSL --------------------------------------------------------------------

TEST_F(ParserTest, PslBasicKeywords) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  EXPECT_EQ(parse_psl("always a", f), f.always(a));
  EXPECT_EQ(parse_psl("never a", f), f.always(f.not_(a)));
  EXPECT_EQ(parse_psl("eventually! a", f), f.eventually(a));
  EXPECT_EQ(parse_psl("next a", f), f.next(a));
  EXPECT_EQ(parse_psl("next[4] a", f), f.next(a, 4));
  EXPECT_EQ(parse_psl("a until! b", f), f.until(a, b));
  EXPECT_EQ(parse_psl("a until b", f), f.weak_until(a, b));
}

TEST_F(ParserTest, PslResponseProperty) {
  FormulaRef got = parse_psl("always (req -> eventually! ack)", f);
  FormulaRef want =
      f.always(f.implies(f.prop("req"), f.eventually(f.prop("ack"))));
  EXPECT_EQ(got, want);
}

TEST_F(ParserTest, PslImplicationRhsMayUseKeywords) {
  FormulaRef got = parse_psl("always (req -> next (ack until! done))", f);
  FormulaRef want = f.always(f.implies(
      f.prop("req"), f.next(f.until(f.prop("ack"), f.prop("done")))));
  EXPECT_EQ(got, want);
}

TEST_F(ParserTest, PslBefore) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  // a before! b == !b U (a && !b).
  EXPECT_EQ(parse_psl("a before! b", f),
            f.until(f.not_(b), f.and_(a, f.not_(b))));
  // weak before additionally allows b to never happen.
  EXPECT_EQ(parse_psl("a before b", f),
            f.or_(f.until(f.not_(b), f.and_(a, f.not_(b))),
                  f.always(f.not_(b))));
}

TEST_F(ParserTest, PslBoundedEventually) {
  EXPECT_EQ(parse_psl("eventually![100] ok", f),
            f.eventually(f.prop("ok"), 100));
}

TEST_F(ParserTest, PslWeakUntilWithBound) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  EXPECT_EQ(parse_psl("a until[5] b", f),
            f.or_(f.until(a, b, 5), f.always(a, 5)));
}

TEST_F(ParserTest, PslErrors) {
  EXPECT_THROW(parse_psl("", f), ParseError);
  EXPECT_THROW(parse_psl("eventually a", f), ParseError);  // missing '!'
  EXPECT_THROW(parse_psl("always", f), ParseError);
  EXPECT_THROW(parse_psl("a until", f), ParseError);
}

TEST_F(ParserTest, DialectDispatch) {
  EXPECT_EQ(parse_property("G a", Dialect::kFltl, f), f.always(f.prop("a")));
  EXPECT_EQ(parse_property("always a", Dialect::kPsl, f),
            f.always(f.prop("a")));
}

TEST_F(ParserTest, BothDialectsShareTheCore) {
  // The same property written in both dialects is the same formula object.
  FormulaRef fltl = parse_fltl("G (req -> F ack)", f);
  FormulaRef psl = parse_psl("always (req -> eventually! ack)", f);
  EXPECT_EQ(fltl, psl);
}

// Print/parse round trip: the canonical text form of any formula parses
// back to the identical hash-consed node.
TEST_F(ParserTest, PrintParseRoundTripOnRandomFormulas) {
  esv::common::Rng rng(0xF00D);
  f.prop("p0");
  f.prop("p1");
  const std::function<FormulaRef(int)> gen = [&](int depth) -> FormulaRef {
    if (depth == 0 || rng.next_chance(1, 4)) {
      return f.prop("p" + std::to_string(rng.next_below(2)));
    }
    const auto bound = [&]() -> std::optional<std::uint32_t> {
      if (rng.next_chance(1, 2)) return std::nullopt;
      return static_cast<std::uint32_t>(rng.next_below(20));
    };
    switch (rng.next_below(8)) {
      case 0: return f.not_(gen(depth - 1));
      case 1: return f.and_(gen(depth - 1), gen(depth - 1));
      case 2: return f.or_(gen(depth - 1), gen(depth - 1));
      case 3: return f.next(gen(depth - 1),
                            1 + static_cast<std::uint32_t>(rng.next_below(4)));
      case 4: return f.eventually(gen(depth - 1), bound());
      case 5: return f.always(gen(depth - 1), bound());
      case 6: return f.until(gen(depth - 1), gen(depth - 1), bound());
      default: return f.release(gen(depth - 1), gen(depth - 1), bound());
    }
  };
  for (int trial = 0; trial < 300; ++trial) {
    FormulaRef original = gen(4);
    FormulaRef reparsed = parse_fltl(original->to_string(), f);
    ASSERT_EQ(original, reparsed) << original->to_string();
  }
}

}  // namespace
}  // namespace esv::temporal

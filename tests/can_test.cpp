// Tests for the CAN controller model and an end-to-end gateway workload
// verified with temporal properties (second automotive vertical).
#include <gtest/gtest.h>

#include "can/can_controller.hpp"
#include "esw/esw_model.hpp"
#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "minic/sema.hpp"
#include "sctc/checker.hpp"

namespace esv::can {
namespace {

TEST(CanControllerTest, RxFifoOrderAndPop) {
  CanController can;
  EXPECT_EQ(can.mmio_read(CanController::kRegRxStatus), 0u);
  can.inject_rx(0x100, 11);
  can.inject_rx(0x200, 22);
  EXPECT_EQ(can.mmio_read(CanController::kRegRxStatus),
            CanController::kRxMsgAvailable);
  EXPECT_EQ(can.mmio_read(CanController::kRegRxId), 0x100u);
  EXPECT_EQ(can.mmio_read(CanController::kRegRxData), 11u);
  can.mmio_write(CanController::kRegRxPop, 1);
  EXPECT_EQ(can.mmio_read(CanController::kRegRxId), 0x200u);
  can.mmio_write(CanController::kRegRxPop, 1);
  EXPECT_EQ(can.mmio_read(CanController::kRegRxStatus), 0u);
  EXPECT_EQ(can.mmio_read(CanController::kRegRxId), 0u);  // empty reads 0
}

TEST(CanControllerTest, OverrunWhenFifoFull) {
  CanConfig cfg;
  cfg.rx_fifo_depth = 2;
  CanController can(cfg);
  EXPECT_TRUE(can.inject_rx(1, 0));
  EXPECT_TRUE(can.inject_rx(2, 0));
  EXPECT_FALSE(can.inject_rx(3, 0));  // dropped
  EXPECT_TRUE(can.overrun());
  EXPECT_EQ(can.rx_dropped(), 1u);
  EXPECT_EQ(can.rx_pending(), 2u);
  EXPECT_TRUE(can.mmio_read(CanController::kRegRxStatus) &
              CanController::kRxOverrun);
  can.mmio_write(CanController::kRegRxClearOverrun, 1);
  EXPECT_FALSE(can.overrun());
}

TEST(CanControllerTest, TransmitWithLatency) {
  CanConfig cfg;
  cfg.tx_busy_ticks = 3;
  CanController can(cfg);
  can.mmio_write(CanController::kRegTxId, 0x321);
  can.mmio_write(CanController::kRegTxData, 0xAB);
  can.mmio_write(CanController::kRegTxCtrl, 1);
  EXPECT_TRUE(can.tx_busy());
  EXPECT_TRUE(can.tx_log().empty());
  for (int i = 0; i < 3; ++i) can.tick();
  EXPECT_FALSE(can.tx_busy());
  EXPECT_EQ(can.mmio_read(CanController::kRegTxStatus),
            CanController::kTxDone);
  ASSERT_EQ(can.tx_log().size(), 1u);
  EXPECT_EQ(can.tx_log()[0], (CanFrame{0x321, 0xAB}));
}

TEST(CanControllerTest, SendWhileBusyIgnored) {
  CanConfig cfg;
  cfg.tx_busy_ticks = 4;
  CanController can(cfg);
  can.mmio_write(CanController::kRegTxId, 1);
  can.mmio_write(CanController::kRegTxCtrl, 1);
  can.mmio_write(CanController::kRegTxId, 2);
  can.mmio_write(CanController::kRegTxCtrl, 1);  // ignored: still busy
  for (int i = 0; i < 4; ++i) can.tick();
  ASSERT_EQ(can.tx_log().size(), 1u);
  EXPECT_EQ(can.tx_log()[0].id, 2u);  // id register was rewritten, one send
}

TEST(CanControllerTest, TxFaultSetsError) {
  CanConfig cfg;
  cfg.tx_busy_ticks = 2;
  CanController can(cfg);
  can.inject_tx_fault();
  can.mmio_write(CanController::kRegTxCtrl, 1);
  for (int i = 0; i < 2; ++i) can.tick();
  EXPECT_TRUE(can.mmio_read(CanController::kRegTxStatus) &
              CanController::kTxError);
  EXPECT_TRUE(can.tx_log().empty());
  // Next send succeeds.
  can.mmio_write(CanController::kRegTxCtrl, 1);
  for (int i = 0; i < 2; ++i) can.tick();
  EXPECT_EQ(can.tx_log().size(), 1u);
}

// --- gateway workload ---------------------------------------------------------

constexpr const char* kGatewaySource = R"(
  /* CAN gateway: forwards engine frames (0x100..0x1FF) to the body bus
     with a translated id (+0x400); drops everything else. */
  enum {
    CAN_RX_STATUS = 0xE0000000, CAN_RX_ID = 0xE0000004,
    CAN_RX_DATA = 0xE0000008, CAN_RX_POP = 0xE000000C,
    CAN_RX_CLROVR = 0xE0000010,
    CAN_TX_ID = 0xE0000014, CAN_TX_DATA = 0xE0000018,
    CAN_TX_CTRL = 0xE000001C, CAN_TX_STATUS = 0xE0000020
  };
  enum { POLL_LIMIT = 256 };

  bool flag;
  int forwarded;
  int dropped;
  int overruns;
  int tx_errors;
  int busy_now;   /* observable: a forward is in progress */

  int tx_wait_done(void) {
    int i;
    for (i = 0; i < POLL_LIMIT; i++) {
      int s = *(CAN_TX_STATUS);
      if ((s & 1) == 0) { return s; }
    }
    return -1;
  }

  void forward(int id, int data) {
    busy_now = 1;
    *(CAN_TX_ID) = id - 0x100 + 0x500;
    *(CAN_TX_DATA) = data;
    *(CAN_TX_CTRL) = 1;
    int s = tx_wait_done();
    if (s < 0) {
      tx_errors = tx_errors + 1;
    } else if ((s & 4) != 0) {
      tx_errors = tx_errors + 1;
    } else {
      forwarded = forwarded + 1;
    }
    busy_now = 0;
  }

  void service_rx(void) {
    int status = *(CAN_RX_STATUS);
    if ((status & 2) != 0) {
      overruns = overruns + 1;
      *(CAN_RX_CLROVR) = 1;
    }
    if ((status & 1) == 0) { return; }
    int id = *(CAN_RX_ID);
    int data = *(CAN_RX_DATA);
    *(CAN_RX_POP) = 1;
    if (id >= 0x100 && id < 0x200) {
      forward(id, data);
    } else {
      dropped = dropped + 1;
    }
  }

  void main(void) {
    flag = true;
    while (1) {
      service_rx();
    }
  }
)";

struct GatewayBench {
  GatewayBench()
      : program(minic::compile(kGatewaySource)),
        lowered(esw::lower_program(program)),
        memory(0x2000),
        interp((memory.map_device(0xE0000000, CanController::kWindowBytes,
                                  can),
                program),
               lowered, memory, inputs) {}

  std::uint32_t g(const std::string& name) { return interp.global(name); }

  CanController can;
  minic::Program program;
  esw::EswProgram lowered;
  mem::AddressSpace memory;
  minic::ZeroInputProvider inputs;
  esw::Interpreter interp;
};

TEST(GatewayTest, ForwardsEngineFramesWithTranslatedIds) {
  GatewayBench bench;
  bench.can.inject_rx(0x123, 77);
  bench.can.inject_rx(0x7FF, 88);  // out of range: dropped
  bench.can.inject_rx(0x1FF, 99);
  bench.interp.run(5000);
  ASSERT_EQ(bench.can.tx_log().size(), 2u);
  EXPECT_EQ(bench.can.tx_log()[0], (can::CanFrame{0x523, 77}));
  EXPECT_EQ(bench.can.tx_log()[1], (can::CanFrame{0x5FF, 99}));
  EXPECT_EQ(bench.g("forwarded"), 2u);
  EXPECT_EQ(bench.g("dropped"), 1u);
  EXPECT_EQ(bench.g("tx_errors"), 0u);
}

TEST(GatewayTest, CountsOverrunsAndRecovers) {
  GatewayBench bench;
  for (int i = 0; i < 8; ++i) {
    bench.can.inject_rx(0x100 + static_cast<std::uint32_t>(i), 1);
  }
  EXPECT_TRUE(bench.can.overrun());  // fifo depth 4: some were dropped
  bench.interp.run(20000);
  EXPECT_EQ(bench.g("overruns"), 1u);
  EXPECT_EQ(bench.g("forwarded"), 4u);  // the queued ones all went out
  EXPECT_FALSE(bench.can.overrun());    // software cleared the flag
}

TEST(GatewayTest, TxFaultCountedAsError) {
  GatewayBench bench;
  bench.can.inject_tx_fault();
  bench.can.inject_rx(0x150, 5);
  bench.interp.run(5000);
  EXPECT_EQ(bench.g("tx_errors"), 1u);
  EXPECT_EQ(bench.g("forwarded"), 0u);
}

// Temporal properties over the gateway, checked on the derived model with a
// testbench process injecting bus traffic.
TEST(GatewayTest, BoundedForwardingPropertyHolds) {
  minic::Program program = minic::compile(kGatewaySource);
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(0x2000);
  CanController can;
  memory.map_device(0xE0000000, CanController::kWindowBytes, can);
  minic::ZeroInputProvider inputs;

  sim::Simulation sim;
  esw::EswModel model(sim, "gateway", program, lowered, memory, inputs);

  sctc::TemporalChecker checker(sim, "sctc");
  checker.register_proposition("rx_pending", [&] { return can.rx_pending() > 0; });
  checker.register_proposition("forwarding", [&] {
    return memory.sctc_read_uint(program.find_global("busy_now")->address) != 0;
  });
  // Every pending frame is serviced within a bounded number of statements,
  // and every forward completes (busy_now falls) within the TX latency.
  checker.add_property("service", "G (rx_pending -> F[400] !rx_pending)");
  checker.add_property("tx_completes", "G (forwarding -> F[400] !forwarding)");
  checker.bind_trigger(model.pc_event());
  checker.set_stop_on_violation(true);

  // Bus traffic: a frame every 50 statement-times.
  sim.spawn("bus", [](sim::Simulation& s, CanController& c) -> sim::Task {
    for (int i = 0; i < 40; ++i) {
      co_await s.delay(sim::Time::ns(50));
      c.inject_rx(0x100 + static_cast<std::uint32_t>(i % 0x40),
                  static_cast<std::uint32_t>(i));
    }
  }(sim, can));

  sim.run(sim::Time::us(30));
  EXPECT_FALSE(checker.any_violated()) << checker.report();
  EXPECT_EQ(can.tx_log().size(), 40u);
}

}  // namespace
}  // namespace esv::can

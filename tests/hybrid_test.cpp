// Tests for the hybrid simulation + formal coverage-closure engine
// (the paper's future-work direction).
#include <gtest/gtest.h>

#include "casestudy/eeprom.hpp"
#include "formal/bmc/bmc.hpp"
#include "formal/bmc/spec.hpp"
#include "hybrid/coverage_closure.hpp"
#include "minic/sema.hpp"
#include "stimulus/random_inputs.hpp"

namespace esv::hybrid {
namespace {

TEST(SpecToolTest, SingleIterationStripsPreambleAndLoop) {
  const std::string out =
      formal::single_iteration(casestudy::eeprom_emulation_source());
  // Main's application loop is gone (the EEE state machines keep their own
  // while(1) loops — those belong to single operations).
  EXPECT_EQ(out.find("while (1)", out.find("void main(void)")),
            std::string::npos);
  EXPECT_NE(out.find("if (1) {"), std::string::npos);
  // The initialization preamble is gone: `flag = true;` only appeared there.
  EXPECT_EQ(out.find("flag = true;"), std::string::npos);
  EXPECT_NO_THROW(minic::compile(out));
}

TEST(SpecToolTest, ReachabilityQueryCompiles) {
  const auto& op = casestudy::operation_by_name("Write");
  const std::string out = formal::instrument_reachability(
      casestudy::eeprom_emulation_source(), op.op_code, op.ret_global,
      casestudy::kEeeErrParameter);
  EXPECT_NE(out.find("assert(ret_write != 3);"), std::string::npos);
  EXPECT_NO_THROW(minic::compile(out));
}

TEST(ScriptedOverrideTest, PlaysThenDelegates) {
  stimulus::RandomInputProvider random(1);
  random.set_range("x", 100, 100);
  stimulus::ScriptedOverrideProvider provider(random);
  provider.play({7, 8});
  EXPECT_EQ(provider.input(0, "x"), 7u);
  EXPECT_TRUE(provider.script_active());
  EXPECT_EQ(provider.input(0, "x"), 8u);
  EXPECT_FALSE(provider.script_active());
  EXPECT_EQ(provider.input(0, "x"), 100u);  // fallback
}

TEST(BmcSnapshotTest, InitialGlobalsOverrideInitializers) {
  minic::Program program = minic::compile(R"(
    int x = 5;
    void main(void) { assert(x == 42); }
  )");
  formal::bmc::BmcOptions options;
  options.initial_globals[program.find_global("x")->address] = 42;
  const auto r = formal::bmc::check(program, options);
  EXPECT_EQ(r.status, formal::bmc::BmcResult::Status::kSafe);
}

// The headline scenario: constrained-random stimulus alone cannot reach
// EEE_ERR_PARAMETER (random ids stay in 0..7) or EEE_ERR_INTERNAL (fault
// rate 0); the formal phase must synthesize directed tests for them.
TEST(CoverageClosureTest, ClosesRandomUnreachableCodes) {
  ClosureConfig config;
  config.seed = 3;
  config.random_test_cases = 120;
  config.max_rounds = 5;
  config.fault_permille = 0;    // EEE_ERR_INTERNAL random-unreachable
  config.max_random_rec_id = 7; // EEE_ERR_PARAMETER random-unreachable
  config.bmc.unwind = 12;
  config.bmc.max_gates = 6'000'000;
  config.bmc.max_seconds = 60;

  const ClosureResult r =
      close_coverage(casestudy::operation_by_name("Write"), config);

  // Random alone must be stuck strictly below full coverage.
  EXPECT_LT(r.random_coverage_percent, 100.0);
  // The hybrid engine improves on it...
  EXPECT_GT(r.final_coverage_percent, r.random_coverage_percent);
  // ...via directed tests, including one that hits EEE_ERR_PARAMETER
  // (input-driven, so its replay is deterministic).
  bool parameter_hit = false;
  for (const DirectedTest& t : r.directed_tests) {
    if (t.target_code == casestudy::kEeeErrParameter && t.hit) {
      parameter_hit = true;
    }
  }
  EXPECT_TRUE(parameter_hit);
  EXPECT_FALSE(r.directed_tests.empty());
}

TEST(CoverageClosureTest, FullyRandomReachableOperationNeedsNoFormalHelp) {
  // With faults enabled and out-of-range ids drawn randomly, Read's codes
  // are all random-reachable: closure should finish in the random phase.
  ClosureConfig config;
  config.seed = 9;
  config.random_test_cases = 400;
  config.max_rounds = 3;
  config.fault_permille = 20;
  config.max_random_rec_id = 9;  // ids 8/9 give EEE_ERR_PARAMETER
  const ClosureResult r =
      close_coverage(casestudy::operation_by_name("Read"), config);
  EXPECT_EQ(r.final_coverage_percent, 100.0);
  EXPECT_TRUE(r.closed());
}

}  // namespace
}  // namespace esv::hybrid

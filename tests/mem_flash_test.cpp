// Tests for the address space / MMIO dispatch and the flash controller model.
#include <gtest/gtest.h>

#include "flash/flash_controller.hpp"
#include "mem/address_space.hpp"

namespace esv {
namespace {

using flash::FlashConfig;
using flash::FlashController;
using mem::AddressSpace;
using mem::MemoryFault;

TEST(AddressSpaceTest, RamReadWrite) {
  AddressSpace mem(0x1000);
  mem.write_word(0x100, 0xDEADBEEF);
  EXPECT_EQ(mem.read_word(0x100), 0xDEADBEEFu);
  EXPECT_EQ(mem.read_word(0x104), 0u);  // zero-initialized
}

TEST(AddressSpaceTest, FaultsOnMisalignedAndUnmapped) {
  AddressSpace mem(0x1000);
  EXPECT_THROW(mem.read_word(0x101), MemoryFault);
  EXPECT_THROW(mem.write_word(0x102, 1), MemoryFault);
  EXPECT_THROW(mem.read_word(0x2000), MemoryFault);
  EXPECT_THROW(mem.write_word(0x2000, 1), MemoryFault);
}

class CountingDevice : public mem::MmioDevice {
 public:
  std::uint32_t mmio_read(std::uint32_t offset) override {
    last_read_offset = offset;
    return 0x1234;
  }
  void mmio_write(std::uint32_t offset, std::uint32_t value) override {
    last_write_offset = offset;
    last_write_value = value;
  }
  void tick() override { ++ticks; }

  std::uint32_t last_read_offset = 0;
  std::uint32_t last_write_offset = 0;
  std::uint32_t last_write_value = 0;
  int ticks = 0;
};

TEST(AddressSpaceTest, MmioDispatchUsesOffsets) {
  AddressSpace mem(0x1000);
  CountingDevice dev;
  mem.map_device(0xF0000000, 0x100, dev);
  EXPECT_EQ(mem.read_word(0xF0000004), 0x1234u);
  EXPECT_EQ(dev.last_read_offset, 4u);
  mem.write_word(0xF0000008, 77);
  EXPECT_EQ(dev.last_write_offset, 8u);
  EXPECT_EQ(dev.last_write_value, 77u);
}

TEST(AddressSpaceTest, TickReachesAllDevices) {
  AddressSpace mem(0x1000);
  CountingDevice a;
  CountingDevice b;
  mem.map_device(0xF0000000, 0x100, a);
  mem.map_device(0xF0001000, 0x100, b);
  mem.tick_devices();
  mem.tick_devices();
  EXPECT_EQ(a.ticks, 2);
  EXPECT_EQ(b.ticks, 2);
}

TEST(AddressSpaceTest, OverlappingMappingsRejected) {
  AddressSpace mem(0x1000);
  CountingDevice a;
  CountingDevice b;
  mem.map_device(0xF0000000, 0x100, a);
  EXPECT_THROW(mem.map_device(0xF0000080, 0x100, b), std::invalid_argument);
  EXPECT_THROW(mem.map_device(0x800, 0x100, b), std::invalid_argument);
}

TEST(AddressSpaceTest, MonitorReadsAreSafe) {
  AddressSpace mem(0x1000);
  CountingDevice dev;
  mem.map_device(0xF0000000, 0x100, dev);
  mem.write_word(0x10, 5);
  EXPECT_EQ(mem.sctc_read_uint(0x10), 5u);
  // Device registers and unmapped/misaligned addresses read as 0, without
  // side effects.
  EXPECT_EQ(mem.sctc_read_uint(0xF0000004), 0u);
  EXPECT_EQ(dev.last_read_offset, 0u);
  EXPECT_EQ(mem.sctc_read_uint(0x11), 0u);
  EXPECT_EQ(mem.sctc_read_uint(0x999999), 0u);
}

// --- FlashController ---------------------------------------------------------

FlashConfig small_config() {
  FlashConfig cfg;
  cfg.pages = 2;
  cfg.words_per_page = 4;
  cfg.erase_busy_ticks = 3;
  cfg.program_busy_ticks = 2;
  return cfg;
}

TEST(FlashTest, PowerOnErased) {
  FlashController flash(small_config());
  for (std::uint32_t off = 0; off < flash.array_bytes(); off += 4) {
    EXPECT_EQ(flash.word_at(off), FlashController::kErasedWord);
  }
}

TEST(FlashTest, ProgramWordAfterBusy) {
  FlashController flash(small_config());
  flash.mmio_write(FlashController::kRegAddr, 8);
  flash.mmio_write(FlashController::kRegData, 0xCAFE);
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdProgramWord);
  EXPECT_TRUE(flash.busy());
  EXPECT_EQ(flash.word_at(8), FlashController::kErasedWord);  // not yet
  flash.tick();
  flash.tick();
  EXPECT_FALSE(flash.busy());
  EXPECT_EQ(flash.word_at(8), 0xCAFEu);
  EXPECT_EQ(flash.program_count(), 1u);
}

TEST(FlashTest, ProgramNonErasedCellFails) {
  FlashController flash(small_config());
  flash.backdoor_write(8, 0x1111);
  flash.mmio_write(FlashController::kRegAddr, 8);
  flash.mmio_write(FlashController::kRegData, 0x2222);
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdProgramWord);
  flash.tick();
  flash.tick();
  EXPECT_TRUE(flash.error());
  EXPECT_EQ(flash.word_at(8), 0x1111u);  // unchanged
  EXPECT_EQ(flash.failed_op_count(), 1u);
}

TEST(FlashTest, ErasePageRestoresErasedState) {
  FlashController flash(small_config());
  flash.backdoor_write(0, 1);
  flash.backdoor_write(12, 2);
  flash.backdoor_write(16, 3);  // page 1: must survive
  flash.mmio_write(FlashController::kRegAddr, 0);  // page 0
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdErasePage);
  for (int i = 0; i < 3; ++i) flash.tick();
  EXPECT_EQ(flash.word_at(0), FlashController::kErasedWord);
  EXPECT_EQ(flash.word_at(12), FlashController::kErasedWord);
  EXPECT_EQ(flash.word_at(16), 3u);
  EXPECT_EQ(flash.erase_count(), 1u);
}

TEST(FlashTest, StatusRegisterTracksBusyAndError) {
  FlashController flash(small_config());
  EXPECT_EQ(flash.mmio_read(FlashController::kRegStatus),
            FlashController::kStatusReady);
  flash.mmio_write(FlashController::kRegAddr, 0);
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdErasePage);
  EXPECT_EQ(flash.mmio_read(FlashController::kRegStatus),
            FlashController::kStatusBusy);
  for (int i = 0; i < 3; ++i) flash.tick();
  EXPECT_EQ(flash.mmio_read(FlashController::kRegStatus),
            FlashController::kStatusReady);
}

TEST(FlashTest, CommandWhileBusyIsRejected) {
  FlashController flash(small_config());
  flash.mmio_write(FlashController::kRegAddr, 0);
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdErasePage);
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdProgramWord);
  EXPECT_TRUE(flash.error());
  for (int i = 0; i < 3; ++i) flash.tick();
  // The original erase still completed.
  EXPECT_EQ(flash.erase_count(), 1u);
  // ACK clears the error.
  flash.mmio_write(FlashController::kRegAck, 1);
  EXPECT_FALSE(flash.error());
}

TEST(FlashTest, FaultInjectionFailsNextCommand) {
  FlashController flash(small_config());
  flash.inject_fault();
  flash.mmio_write(FlashController::kRegAddr, 0);
  flash.mmio_write(FlashController::kRegData, 0xAA);
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdProgramWord);
  flash.tick();
  flash.tick();
  EXPECT_TRUE(flash.error());
  EXPECT_EQ(flash.word_at(0), FlashController::kErasedWord);
  // The injection is one-shot: the retry succeeds.
  flash.mmio_write(FlashController::kRegAck, 1);
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdProgramWord);
  flash.tick();
  flash.tick();
  EXPECT_EQ(flash.word_at(0), 0xAAu);
}

TEST(FlashTest, ArrayIsReadableViaMmioWindow) {
  AddressSpace mem(0x1000);
  FlashController flash(small_config());
  mem.map_device(0xF0000000, flash.window_bytes(), flash);
  flash.backdoor_write(4, 0x77);
  EXPECT_EQ(mem.read_word(0xF0000000 + FlashController::kArrayOffset + 4),
            0x77u);
  // Stray direct writes to the array set ERROR instead of writing.
  mem.write_word(0xF0000000 + FlashController::kArrayOffset + 4, 0x99);
  EXPECT_TRUE(flash.error());
  EXPECT_EQ(flash.word_at(4), 0x77u);
}

TEST(FlashTest, InvalidCommandAndBadPage) {
  FlashController flash(small_config());
  flash.mmio_write(FlashController::kRegCmd, 99);
  EXPECT_TRUE(flash.error());
  flash.mmio_write(FlashController::kRegAck, 1);
  flash.mmio_write(FlashController::kRegAddr, 0x10000);  // beyond the array
  flash.mmio_write(FlashController::kRegCmd, FlashController::kCmdErasePage);
  for (int i = 0; i < 3; ++i) flash.tick();
  EXPECT_TRUE(flash.error());
}

}  // namespace
}  // namespace esv

// esv-worker: out-of-process campaign shard executor, spawned by the
// distributed campaign broker (esv-verify --campaign ... --workers=N).
// Not meant to be run by hand; see docs/DISTRIBUTED.md.
#include "dist/worker.hpp"

int main(int argc, char** argv) { return esv::dist::worker_main(argc, argv); }

// esv-worker: out-of-process campaign shard executor, spawned by the
// distributed campaign broker (esv-verify --campaign ... --workers=N).
// Not meant to be run by hand; see docs/DISTRIBUTED.md.
#include <csignal>

#include "dist/worker.hpp"

int main(int argc, char** argv) {
  // The broker can vanish between poll() and any write; MSG_NOSIGNAL only
  // protects send()-based paths, so ignore SIGPIPE process-wide and let
  // every broken-pipe surface as a WireError instead of a silent kill.
  std::signal(SIGPIPE, SIG_IGN);
  return esv::dist::worker_main(argc, argv);
}

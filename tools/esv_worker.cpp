// esv-worker: out-of-process campaign shard executor, spawned by the
// distributed campaign broker (esv-verify --campaign ... --workers=N).
// Not meant to be run by hand; see docs/DISTRIBUTED.md.
//
// SIGPIPE is ignored inside worker_main itself, so a broker that dies
// mid-conversation always produces a structured worker exit — even for
// embeddings of worker_main that skip this shim.
#include "dist/worker.hpp"

int main(int argc, char** argv) {
  return esv::dist::worker_main(argc, argv);
}

// esv-verify — command-line front end for the library.
//
// Verifies temporal properties of a mini-C program under either of the
// paper's approaches:
//
//   esv-verify program.c spec.esv [options]
//
//     --approach=1|2       microprocessor model | derived ESW model (default 2)
//     --max-steps=N        statement/cycle budget (default 1,000,000)
//     --seed=S             stimulus seed (default 1)
//     --mode=progression|automaton   monitor mode (default progression)
//     --monitor-mode=interpreted|automaton|compiled|both
//                          full monitor-mode spelling (docs/MONITORS.md):
//                          "interpreted" is the progression rewriter,
//                          "compiled" the flat-transition-table lowering,
//                          "both" runs the two in lockstep and reports any
//                          divergence as a monitor error (exit 3)
//     --vcd=FILE           dump a waveform of all propositions
//     --witness=N          keep the last N steps as a violation witness
//     --faults=FILE        inject faults from a fault plan (docs/FAULTS.md)
//     --metrics=FILE       write run metrics as JSON (docs/OBSERVABILITY.md)
//     --trace=FILE         write the JSONL event trace (single runs only)
//     --quiet              only print the final verdict table
//
//   Campaign mode (docs/CAMPAIGN.md) replaces the single run by a
//   multi-seed sweep with deterministic aggregation:
//     --campaign=LO..HI    verify every seed in [LO, HI] (inclusive)
//     --jobs=N             campaign worker threads (default 1)
//     --workers=N          out-of-process worker shards (docs/DISTRIBUTED.md);
//                          total parallelism is workers x jobs
//     --report=FILE        write the JSON campaign report to FILE
//     --report-timing=on|off  include the wall-clock fields in --report
//                          (default on; off makes the file byte-identical
//                          across runs, jobs, and workers counts)
//     --trace-dir=DIR      write each seed's JSONL trace to DIR
//     --seed-timeout=SECS  per-seed wall-clock watchdog (default off)
//     --seed-retries=N     retries for infrastructure errors (default 0)
//     --seed-mem-limit=MB  per-seed address-space ceiling, enforced by the
//                          worker shards (requires --workers; docs/JOURNAL.md)
//     --journal=FILE       write-ahead journal of finished seeds
//                          (docs/JOURNAL.md)
//     --journal-sync=record|batch|none   journal fsync policy (default batch)
//     --resume             replay FILE, skip the seeds it already holds, and
//                          re-run only the rest; the final report is byte-
//                          identical to an uninterrupted run
//     --campaign-timeout=SECS  whole-campaign wall-clock deadline: past it
//                          the run aborts in a structured way (unfinished
//                          seeds become deterministic infrastructure
//                          captures, the report is flagged, exit 3)
//     --chaos=PLAN         self-chaos (docs/RESILIENCE.md): PLAN is a chaos
//                          plan file, or inline directives when no such
//                          file exists; infrastructure faults are injected
//                          deterministically into the wire, worker, and
//                          journal layers of this run
//     --chaos-seed=N       salt for the chaos schedule (default 1)
//   In campaign mode --metrics writes the merged per-seed metrics (byte-
//   identical for any --jobs and --workers); --vcd and --trace are
//   single-run only, --workers/--trace-dir/--journal/--chaos campaign-only.
//
// Exit code: 0 when no property is violated, 1 on violation (in campaign
// mode: any violated or errored seed), 2 on usage or input errors, 3 when
// the verification run itself fails at runtime (simulation or interpreter
// error escaping the configured run) or a --campaign-timeout deadline
// aborts the campaign.
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "chaos/chaos.hpp"
#include "journal/journal.hpp"
#include "cpu/codegen.hpp"
#include "dist/broker.hpp"
#include "cpu/cpu.hpp"
#include "esw/esw_model.hpp"
#include "fault/fault_engine.hpp"
#include "fault/fault_plan.hpp"
#include "minic/sema.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/vcd.hpp"
#include "spec/specfile.hpp"
#include "stimulus/random_inputs.hpp"

namespace {

using namespace esv;
namespace sctc = esv::sctc;

struct Options {
  std::string program_path;
  std::string spec_path;
  int approach = 2;
  std::uint64_t max_steps = 1'000'000;
  std::uint64_t seed = 1;
  sctc::MonitorMode mode = sctc::MonitorMode::kProgression;
  std::string vcd_path;
  std::size_t witness = 0;
  bool quiet = false;
  std::string faults_path;
  std::string metrics_path;
  std::string trace_path;
  // Campaign mode.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> campaign;
  unsigned jobs = 1;
  unsigned workers = 0;  // 0 = in-process campaign
  std::string report_path;
  bool report_timing = true;
  std::string trace_dir;
  double seed_timeout = 0.0;
  unsigned seed_retries = 0;
  std::uint64_t seed_mem_limit = 0;  // MiB, 0 = off
  std::string journal_path;
  journal::SyncPolicy journal_sync = journal::SyncPolicy::kBatch;
  bool journal_sync_given = false;
  bool resume = false;
  double campaign_timeout = 0.0;
  std::string chaos_spec;  // file path or inline plan text
  std::uint64_t chaos_seed = 1;
  bool chaos_seed_given = false;
};

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

bool parse_args(int argc, char** argv, Options& options, std::string& error) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix,
                              std::string& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      out = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    std::uint64_t number = 0;
    if (value_of("--approach=", value)) {
      if (!parse_u64(value, number) || (number != 1 && number != 2)) {
        error = "--approach must be 1 or 2";
        return false;
      }
      options.approach = static_cast<int>(number);
    } else if (value_of("--max-steps=", value)) {
      if (!parse_u64(value, number)) {
        error = "--max-steps must be an integer";
        return false;
      }
      options.max_steps = number;
    } else if (value_of("--seed=", value)) {
      if (!parse_u64(value, number)) {
        error = "--seed must be an integer";
        return false;
      }
      options.seed = number;
    } else if (value_of("--mode=", value)) {
      if (value == "progression") {
        options.mode = sctc::MonitorMode::kProgression;
      } else if (value == "automaton") {
        options.mode = sctc::MonitorMode::kSynthesizedAutomaton;
      } else {
        error = "--mode must be progression or automaton";
        return false;
      }
    } else if (value_of("--monitor-mode=", value)) {
      if (const auto mode = sctc::parse_monitor_mode(value)) {
        options.mode = *mode;
      } else {
        error =
            "--monitor-mode must be interpreted (progression), automaton, "
            "compiled, or both";
        return false;
      }
    } else if (value_of("--campaign=", value)) {
      const std::size_t dots = value.find("..");
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      if (dots == std::string::npos || !parse_u64(value.substr(0, dots), lo) ||
          !parse_u64(value.substr(dots + 2), hi)) {
        error = "--campaign expects a seed range LO..HI";
        return false;
      }
      if (hi < lo) {
        error = "--campaign: empty seed range (HI < LO)";
        return false;
      }
      options.campaign = {lo, hi};
    } else if (value_of("--jobs=", value)) {
      std::uint64_t jobs = 0;
      if (!parse_u64(value, jobs) || jobs == 0) {
        error = "--jobs must be a positive integer";
        return false;
      }
      options.jobs = static_cast<unsigned>(jobs);
    } else if (value_of("--workers=", value)) {
      std::uint64_t workers = 0;
      if (!parse_u64(value, workers) || workers == 0) {
        error = "--workers must be a positive integer";
        return false;
      }
      options.workers = static_cast<unsigned>(workers);
    } else if (value_of("--trace-dir=", value)) {
      options.trace_dir = value;
    } else if (value_of("--report=", value)) {
      options.report_path = value;
    } else if (value_of("--report-timing=", value)) {
      if (value == "on") {
        options.report_timing = true;
      } else if (value == "off") {
        options.report_timing = false;
      } else {
        error = "--report-timing must be on or off";
        return false;
      }
    } else if (value_of("--journal=", value)) {
      if (value.empty()) {
        error = "--journal expects a file path";
        return false;
      }
      options.journal_path = value;
    } else if (value_of("--journal-sync=", value)) {
      if (value == "record") {
        options.journal_sync = journal::SyncPolicy::kRecord;
      } else if (value == "batch") {
        options.journal_sync = journal::SyncPolicy::kBatch;
      } else if (value == "none") {
        options.journal_sync = journal::SyncPolicy::kNone;
      } else {
        error = "--journal-sync must be record, batch, or none";
        return false;
      }
      options.journal_sync_given = true;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (value_of("--campaign-timeout=", value)) {
      char* end = nullptr;
      const double seconds = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() ||
          !(seconds >= 0.0)) {
        error = "--campaign-timeout must be a non-negative number of seconds";
        return false;
      }
      options.campaign_timeout = seconds;
    } else if (value_of("--chaos=", value)) {
      if (value.empty()) {
        error = "--chaos expects a plan file or inline directives";
        return false;
      }
      options.chaos_spec = value;
    } else if (value_of("--chaos-seed=", value)) {
      if (!parse_u64(value, number)) {
        error = "--chaos-seed must be an integer";
        return false;
      }
      options.chaos_seed = number;
      options.chaos_seed_given = true;
    } else if (value_of("--seed-mem-limit=", value)) {
      if (!parse_u64(value, number) || number == 0) {
        error = "--seed-mem-limit must be a positive number of MiB";
        return false;
      }
      options.seed_mem_limit = number;
    } else if (value_of("--faults=", value)) {
      options.faults_path = value;
    } else if (value_of("--seed-timeout=", value)) {
      char* end = nullptr;
      const double seconds = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() ||
          !(seconds >= 0.0)) {
        error = "--seed-timeout must be a non-negative number of seconds";
        return false;
      }
      options.seed_timeout = seconds;
    } else if (value_of("--seed-retries=", value)) {
      if (!parse_u64(value, number)) {
        error = "--seed-retries must be an integer";
        return false;
      }
      options.seed_retries = static_cast<unsigned>(number);
    } else if (value_of("--vcd=", value)) {
      options.vcd_path = value;
    } else if (value_of("--metrics=", value)) {
      options.metrics_path = value;
    } else if (value_of("--trace=", value)) {
      options.trace_path = value;
    } else if (value_of("--witness=", value)) {
      if (!parse_u64(value, number)) {
        error = "--witness must be an integer";
        return false;
      }
      options.witness = static_cast<std::size_t>(number);
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      error = "unknown option " + arg;
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    error = "usage: esv-verify <program.c> <spec.esv> [options]";
    return false;
  }
  if (options.campaign && !options.vcd_path.empty()) {
    error = "--vcd is not available in campaign mode";
    return false;
  }
  if (options.campaign && !options.trace_path.empty()) {
    error = "--trace is not available in campaign mode";
    return false;
  }
  if (!options.campaign && !options.trace_dir.empty()) {
    error = "--trace-dir is only available in campaign mode";
    return false;
  }
  if (!options.campaign && options.workers != 0) {
    error = "--workers is only available in campaign mode";
    return false;
  }
  if (!options.campaign && !options.journal_path.empty()) {
    error = "--journal is only available in campaign mode";
    return false;
  }
  if (options.journal_path.empty() && options.resume) {
    error = "--resume requires --journal";
    return false;
  }
  if (options.journal_path.empty() && options.journal_sync_given) {
    error = "--journal-sync requires --journal";
    return false;
  }
  if (options.seed_mem_limit != 0 && options.workers == 0) {
    error =
        "--seed-mem-limit requires --workers (the ceiling is enforced per "
        "worker shard)";
    return false;
  }
  if (!options.campaign && options.campaign_timeout != 0.0) {
    error = "--campaign-timeout is only available in campaign mode";
    return false;
  }
  if (!options.campaign && !options.chaos_spec.empty()) {
    error = "--chaos is only available in campaign mode";
    return false;
  }
  if (options.chaos_spec.empty() && options.chaos_seed_given) {
    error = "--chaos-seed requires --chaos";
    return false;
  }
  options.program_path = positional[0];
  options.spec_path = positional[1];
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string error;
  if (!parse_args(argc, argv, options, error)) {
    std::cerr << error << "\n";
    return 2;
  }

  try {
    const std::string source = read_file(options.program_path);

    if (options.campaign) {
      campaign::CampaignConfig config;
      config.program_source = source;
      config.spec_text = read_file(options.spec_path);
      config.approach = options.approach;
      config.mode = options.mode;
      config.max_steps = options.max_steps;
      config.seed_lo = options.campaign->first;
      config.seed_hi = options.campaign->second;
      config.jobs = options.jobs;
      config.witness_depth = options.witness;
      if (!options.faults_path.empty()) {
        config.fault_plan_text = read_file(options.faults_path);
      }
      config.seed_timeout_seconds = options.seed_timeout;
      config.seed_retries = options.seed_retries;
      config.seed_mem_limit_mb = options.seed_mem_limit;
      config.campaign_timeout_seconds = options.campaign_timeout;
      config.trace_dir = options.trace_dir;
      config.workers = options.workers;
      // --report always carries the metrics block, so a report request is
      // enough to turn collection on.
      config.collect_metrics =
          !options.metrics_path.empty() || !options.report_path.empty();

      // Self-chaos (docs/RESILIENCE.md). --chaos=PLAN names a plan file, or
      // carries inline directives when no such file exists. Parse errors are
      // configuration errors (exit 2). The orchestrator-side engine installs
      // before the journal opens so the journal fault points cover the
      // header write too; worker processes get their own engines through the
      // environment the broker forwards.
      std::string chaos_text;
      if (!options.chaos_spec.empty()) {
        std::ifstream chaos_in(options.chaos_spec);
        if (chaos_in) {
          std::ostringstream buffer;
          buffer << chaos_in.rdbuf();
          chaos_text = buffer.str();
        } else {
          chaos_text = options.chaos_spec;
        }
      }
      std::unique_ptr<chaos::ChaosEngine> chaos_engine;
      obs::MetricsRegistry chaos_metrics;
      obs::TraceWriter chaos_events;
      if (!chaos_text.empty()) {
        chaos::ChaosPlan chaos_plan = chaos::parse_plan(chaos_text);
        chaos_engine = std::make_unique<chaos::ChaosEngine>(
            std::move(chaos_plan), options.chaos_seed, chaos::Role::kBroker);
        chaos_engine->set_metrics(&chaos_metrics);
        chaos_engine->set_trace(&chaos_events);
        chaos::ChaosEngine::install(chaos_engine.get());
      }

      // Preflight the metrics sink so an unwritable path is a configuration
      // error (exit 2) before any seed runs.
      std::ofstream metrics_out;
      if (!options.metrics_path.empty()) {
        metrics_out.open(options.metrics_path);
        if (!metrics_out) {
          throw std::runtime_error("cannot write " + options.metrics_path);
        }
      }

      // Write-ahead journal (docs/JOURNAL.md): every finished seed is
      // appended before the campaign acknowledges it, so a killed run
      // resumes from the journal instead of starting over.
      std::unique_ptr<journal::JournalWriter> journal_writer;
      std::mutex journal_error_mutex;
      std::string journal_error;
      if (!options.journal_path.empty()) {
        if (options.resume) {
          const journal::RecoveredJournal recovered =
              journal::recover(options.journal_path);
          if (recovered.header_valid &&
              recovered.config_digest != journal::config_digest(config)) {
            // Splicing results from a different configuration would produce
            // a report that no single campaign ever computed.
            throw std::runtime_error(
                "--resume: journal " + options.journal_path +
                " was written by a different campaign configuration "
                "(journal digest " +
                recovered.config_digest + ", this campaign " +
                journal::config_digest(config) + ")");
          }
          config.resume_results = recovered.results;
          if (!options.quiet) {
            std::cout << "journal: resumed " << recovered.results.size()
                      << " of " << (config.seed_hi - config.seed_lo + 1)
                      << " seeds from " << options.journal_path;
            if (recovered.tail_dropped) std::cout << " (corrupt tail dropped)";
            std::cout << "\n";
          }
          journal_writer = std::make_unique<journal::JournalWriter>(
              options.journal_path, config, options.journal_sync,
              recovered.header_valid ? recovered.valid_bytes : 0);
        } else {
          journal_writer = std::make_unique<journal::JournalWriter>(
              options.journal_path, config, options.journal_sync);
        }
        // Workers call this concurrently (the writer serializes) and must
        // not see an exception; the first failure is surfaced after the run.
        config.on_result = [&](const campaign::SeedResult& result) {
          try {
            journal_writer->append(result);
          } catch (const journal::JournalError& e) {
            std::lock_guard<std::mutex> lock(journal_error_mutex);
            if (journal_error.empty()) journal_error = e.what();
          }
        };
      }

      dist::BrokerOptions broker_options;
      broker_options.chaos_plan_text = chaos_text;
      broker_options.chaos_seed = options.chaos_seed;
      campaign::CampaignReport report =
          options.workers != 0 ? dist::run_distributed(config, broker_options)
                               : campaign::run(config);
      if (journal_writer) journal_writer->close();
      if (chaos_engine) {
        chaos::ChaosEngine::install(nullptr);
        report.chaos_metrics = chaos_metrics.snapshot();
        report.chaos_events_jsonl = chaos_events.text();
      }
      if (!journal_error.empty()) {
        // The campaign finished, but its durability promise did not: treat a
        // failed journal like any other unwritable output (exit 2). Chaos
        // journal faults surface here too — a deterministic structured
        // abort, never silent data loss.
        throw std::runtime_error(journal_error);
      }
      std::cout << (options.quiet ? report.summary() : report.verdict_table());
      if (!options.report_path.empty()) {
        std::ofstream out(options.report_path);
        if (!out) {
          throw std::runtime_error("cannot write " + options.report_path);
        }
        out << report.to_json(options.report_timing);
        if (!options.quiet) {
          std::cout << "report: " << options.report_path << "\n";
        }
      }
      if (!options.metrics_path.empty()) {
        // Deterministic rendering: the merged campaign snapshot carries no
        // timing histograms, so the file is byte-identical for any --jobs.
        metrics_out << report.metrics.to_json(/*include_timing=*/false);
        if (!options.quiet) {
          std::cout << "metrics: " << options.metrics_path << "\n";
        }
      }
      if (!options.quiet) {
        std::ostringstream timing;
        timing << std::fixed << std::setprecision(2);
        timing << "wall " << report.wall_seconds << " s, "
               << report.seeds_per_second() << " seeds/sec (";
        if (report.distributed) {
          timing << report.workers
                 << (report.workers == 1 ? " proc x " : " procs x ")
                 << report.jobs
                 << (report.jobs == 1 ? " thread)" : " threads)");
        } else {
          timing << report.jobs
                 << (report.jobs == 1 ? " worker)" : " workers)");
        }
        timing << "\n";
        std::cout << timing.str();
        if (report.degraded) {
          std::cout << "warning: campaign degraded to in-process execution "
                       "(every worker exhausted its respawn budget)\n";
        }
      }
      if (report.deadline_exceeded) {
        // Structured abort: the partial report and journal were written
        // above; the exit code tells the caller the deadline cut the run.
        std::cerr << "campaign aborted: wall-clock deadline exceeded "
                     "(--campaign-timeout)\n";
        return 3;
      }
      return (report.any_violated() || report.error_seeds != 0) ? 1 : 0;
    }

    const spec::SpecFile specfile =
        spec::parse_spec(read_file(options.spec_path));

    minic::Program program = minic::compile(source);
    mem::AddressSpace memory(
        (program.data_segment_end() + 0xFFFu) & ~0xFFFu);

    stimulus::RandomInputProvider inputs(options.seed);
    for (const auto& input : specfile.inputs) {
      if (input.is_chance) {
        inputs.set_chance(input.name,
                          static_cast<std::uint32_t>(input.lo),
                          static_cast<std::uint32_t>(input.hi));
      } else {
        inputs.set_range(input.name, input.lo, input.hi);
      }
    }

    sim::Simulation sim;
    sctc::TemporalChecker checker(sim, "sctc", options.mode);
    spec::apply_spec(specfile, program, memory, checker);
    if (options.witness != 0) checker.set_witness_depth(options.witness);
    checker.set_stop_on_violation(true);

    // Fault plan (still configuration: parse and resolution errors exit 2).
    fault::FaultPlan plan;
    if (!options.faults_path.empty()) {
      plan = fault::parse_plan(read_file(options.faults_path));
    }
    for (const auto& fault_line : specfile.fault_lines) {
      plan.entries.push_back(
          fault::parse_fault_line(fault_line.text, fault_line.line));
    }
    plan.resolve([&program](const std::string& name, std::uint32_t& address) {
      const minic::GlobalVar* global = program.find_global(name);
      if (global == nullptr || global->is_array) return false;
      address = global->address;
      return true;
    });
    std::optional<fault::FaultEngine> faults;
    if (!plan.empty()) {
      faults.emplace(plan, options.seed);
      faults->bind_memory(memory);
    }

    // Observability sinks (docs/OBSERVABILITY.md). Output files are opened
    // up front so an unwritable path is a configuration error (exit 2), not
    // a lost run.
    const bool want_metrics = !options.metrics_path.empty();
    const bool want_trace = !options.trace_path.empty();
    std::ofstream metrics_out;
    std::ofstream trace_out;
    if (want_metrics) {
      metrics_out.open(options.metrics_path);
      if (!metrics_out) {
        throw std::runtime_error("cannot write " + options.metrics_path);
      }
    }
    if (want_trace) {
      trace_out.open(options.trace_path);
      if (!trace_out) {
        throw std::runtime_error("cannot write " + options.trace_path);
      }
    }
    obs::MetricsRegistry metrics;
    obs::TraceWriter trace;
    if (want_metrics) {
      sim.set_metrics(&metrics);
      checker.set_metrics(&metrics);
      if (faults) faults->set_metrics(&metrics);
    }
    if (want_trace) {
      trace.seed_start(options.seed);
      checker.set_trace(&trace);
      if (faults) faults->set_trace(&trace);
    }

    sim::VcdTracer vcd(sim);
    const bool want_vcd = !options.vcd_path.empty();
    if (want_vcd) {
      std::set<std::string> traced;
      for (const auto& prop : specfile.propositions) {
        if (!traced.insert(prop.global).second) continue;
        const std::uint32_t address =
            program.find_global(prop.global)->address;
        vcd.add_u32(prop.global,
                    [&memory, address] { return memory.sctc_read_uint(address); });
      }
    }

    // From here on errors are runtime verification failures, not
    // configuration mistakes: a kernel spawn rejection, an interpreter
    // fault, or a trap escaping the run exits 3 with a one-line diagnostic.
    std::uint64_t executed = 0;
    const auto run_started = std::chrono::steady_clock::now();
    try {
      if (options.approach == 2) {
        esw::EswProgram lowered = esw::lower_program(program);
        esw::EswModel model(sim, "esw", program, lowered, memory, inputs);
        checker.bind_trigger(model.pc_event());
        if (want_vcd) vcd.sample_on(model.pc_event());
        sim.create_method(
            "supervisor",
            [&] {
              if (faults) faults->on_step(checker.steps());
              if (model.finished() || checker.all_decided() ||
                  model.interpreter().steps_executed() >= options.max_steps) {
                sim.stop();
              }
            },
            {&model.pc_event()}, /*run_at_start=*/false);
        sim.run();
        executed = model.interpreter().steps_executed();
      } else {
        cpu::CodeImage image = cpu::compile_to_image(program);
        sim::Clock clock(sim, "clk", sim::Time::ns(10));
        cpu::Cpu core(sim, "cpu", image, memory, inputs, clock);
        core.set_stop_on_halt(true);
        if (faults) faults->bind_clock(clock);
        checker.bind_trigger(clock.posedge_event());
        if (want_vcd) vcd.sample_on(clock.posedge_event());
        sim.create_method(
            "supervisor",
            [&] {
              if (faults) faults->on_step(checker.steps());
              if (checker.all_decided() ||
                  clock.cycles() >= options.max_steps) {
                sim.stop();
              }
            },
            {&clock.posedge_event()}, /*run_at_start=*/false);
        sim.run();
        executed = clock.cycles();
        if (core.trapped() && !options.quiet) {
          std::cout << "CPU trapped: " << core.trap_message() << "\n";
        }
      }
    } catch (const std::exception& e) {
      std::cerr << "runtime error: " << e.what() << "\n";
      return 3;
    }

    if (want_vcd) {
      std::ofstream(options.vcd_path) << vcd.str();
      if (!options.quiet) {
        std::cout << "waveform: " << options.vcd_path << " ("
                  << vcd.samples() << " samples)\n";
      }
    }
    if (want_metrics) {
      metrics.counter("stimulus.draws").add(inputs.draw_count());
      metrics
          .counter(options.approach == 2 ? "esw.statements" : "cpu.cycles")
          .add(executed);
      metrics.duration_histogram("run.wall_us")
          .record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - run_started)
                  .count()));
      metrics_out << metrics.snapshot().to_json(/*include_timing=*/true);
      if (!options.quiet) {
        std::cout << "metrics: " << options.metrics_path << "\n";
      }
    }
    if (want_trace) {
      std::uint64_t validated = 0;
      std::uint64_t violated = 0;
      std::uint64_t pending = 0;
      for (const sctc::PropertyRecord& record : checker.properties()) {
        switch (record.verdict()) {
          case temporal::Verdict::kValidated: ++validated; break;
          case temporal::Verdict::kViolated: ++violated; break;
          case temporal::Verdict::kPending: ++pending; break;
        }
      }
      trace.seed_end(options.seed, checker.steps(), validated, violated,
                     pending);
      trace_out << trace.text();
      if (!options.quiet) {
        std::cout << "trace: " << options.trace_path << " ("
                  << trace.event_count() << " events)\n";
      }
    }
    if (faults) {
      std::cout << "faults injected: " << faults->injected_count() << "\n";
      if (!options.quiet && faults->injected_count() != 0) {
        std::cout << faults->log_text();
      }
    }
    std::cout << checker.report();
    if (checker.any_violated() && options.witness != 0) {
      std::cout << "witness (last " << options.witness << " steps):\n"
                << checker.witness_table();
    }
    if (checker.divergence_count() != 0) {
      // A compiled-vs-interpreted divergence is a defect of the verifier
      // itself, never a property result: same exit code as a runtime error.
      std::cerr << "monitor error: " << checker.divergence_count()
                << " compiled monitor(s) diverged from the interpreted "
                   "oracle (--monitor-mode=both)\n";
      return 3;
    }
    return checker.any_violated() ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// CAN message gateway — the third domain scenario: a gateway ECU forwards
// engine-bus frames (0x100..0x1FF) to the body bus with translated ids,
// while the SCTC checks bounded-forwarding properties and a VCD waveform
// records the observable state.
//
// Runs on the derived model (approach 2) with a bus-traffic process
// injecting frames into the controller's RX FIFO.
//
// Build & run:  ./build/examples/can_gateway
#include <fstream>
#include <iostream>

#include "can/can_controller.hpp"
#include "esw/esw_model.hpp"
#include "minic/sema.hpp"
#include "sctc/checker.hpp"
#include "sim/vcd.hpp"

int main() {
  using namespace esv;

  const char* source = R"(
    enum {
      CAN_RX_STATUS = 0xE0000000, CAN_RX_ID = 0xE0000004,
      CAN_RX_DATA = 0xE0000008, CAN_RX_POP = 0xE000000C,
      CAN_RX_CLROVR = 0xE0000010,
      CAN_TX_ID = 0xE0000014, CAN_TX_DATA = 0xE0000018,
      CAN_TX_CTRL = 0xE000001C, CAN_TX_STATUS = 0xE0000020
    };
    enum { POLL_LIMIT = 256 };

    int forwarded;
    int dropped;
    int overruns;
    int busy_now;

    int tx_wait_done(void) {
      int i;
      for (i = 0; i < POLL_LIMIT; i++) {
        int s = *(CAN_TX_STATUS);
        if ((s & 1) == 0) { return s; }
      }
      return -1;
    }

    void forward(int id, int data) {
      busy_now = 1;
      *(CAN_TX_ID) = id - 0x100 + 0x500;
      *(CAN_TX_DATA) = data;
      *(CAN_TX_CTRL) = 1;
      int s = tx_wait_done();
      if (s >= 0) {
        if ((s & 4) == 0) { forwarded = forwarded + 1; }
      }
      busy_now = 0;
    }

    void main(void) {
      while (1) {
        int status = *(CAN_RX_STATUS);
        if ((status & 2) != 0) {
          overruns = overruns + 1;
          *(CAN_RX_CLROVR) = 1;
        }
        if ((status & 1) != 0) {
          int id = *(CAN_RX_ID);
          int data = *(CAN_RX_DATA);
          *(CAN_RX_POP) = 1;
          if (id >= 0x100 && id < 0x200) {
            forward(id, data);
          } else {
            dropped = dropped + 1;
          }
        }
      }
    }
  )";

  minic::Program program = minic::compile(source);
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(0x2000);
  can::CanController controller;
  memory.map_device(0xE0000000, can::CanController::kWindowBytes, controller);
  minic::ZeroInputProvider inputs;

  sim::Simulation sim;
  esw::EswModel model(sim, "gateway", program, lowered, memory, inputs);

  sctc::TemporalChecker checker(sim, "sctc");
  checker.register_proposition("rx_pending",
                               [&] { return controller.rx_pending() > 0; });
  const std::uint32_t busy_addr = program.find_global("busy_now")->address;
  checker.register_proposition("forwarding", [&] {
    return memory.sctc_read_uint(busy_addr) != 0;
  });
  checker.add_property("service", "G (rx_pending -> F[400] !rx_pending)");
  checker.add_property("tx_completes", "G (forwarding -> F[400] !forwarding)");
  checker.bind_trigger(model.pc_event());
  checker.set_stop_on_violation(true);

  sim::VcdTracer vcd(sim);
  vcd.add_u32("rx_pending", [&] {
    return static_cast<std::uint32_t>(controller.rx_pending());
  });
  vcd.add_bool("forwarding",
               [&] { return memory.sctc_read_uint(busy_addr) != 0; });
  vcd.add_u32("forwarded", [&] {
    return memory.sctc_read_uint(program.find_global("forwarded")->address);
  });
  vcd.sample_on(model.pc_event());

  // Bus traffic: bursts of mixed engine/body/diagnostic frames.
  sim.spawn("bus", [](sim::Simulation& s, can::CanController& c) -> sim::Task {
    for (int burst = 0; burst < 20; ++burst) {
      co_await s.delay(sim::Time::ns(400));
      for (int k = 0; k < 3; ++k) {
        const std::uint32_t id =
            (k == 2) ? 0x700u : 0x100u + static_cast<std::uint32_t>(burst);
        c.inject_rx(id, static_cast<std::uint32_t>(burst * 10 + k));
      }
    }
  }(sim, controller));

  sim.run(sim::Time::us(60));

  std::ofstream("can_gateway.vcd") << vcd.str();
  std::cout << checker.report();
  std::cout << "forwarded "
            << memory.sctc_read_uint(program.find_global("forwarded")->address)
            << " frames, dropped "
            << memory.sctc_read_uint(program.find_global("dropped")->address)
            << ", overruns "
            << memory.sctc_read_uint(program.find_global("overruns")->address)
            << "; tx log has " << controller.tx_log().size()
            << " frames; waveform: can_gateway.vcd\n";
  return checker.any_violated() ? 1 : 0;
}

// Quickstart: check a temporal property on embedded C software in ~40 lines.
//
// Flow (the paper's 2nd approach):
//   1. write the software in mini-C,
//   2. derive the SystemC model (C2SystemC lowering),
//   3. register propositions over the software's variables,
//   4. add an FLTL property and bind the checker to the pc event,
//   5. simulate.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "esw/esw_model.hpp"
#include "minic/sema.hpp"
#include "temporal/automaton.hpp"

int main() {
  using namespace esv;

  // 1. The embedded software: a counter that must reach its limit.
  const char* source = R"(
    int counter;
    bool done;
    void main(void) {
      counter = 0;
      while (counter < 10) {
        counter = counter + 1;
      }
      done = true;
    }
  )";
  minic::Program program = minic::compile(source);

  // 2. Derive the executable model (every statement = one temporal step).
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(0x2000);  // the virtual memory model
  minic::ZeroInputProvider inputs;

  sim::Simulation sim;
  esw::EswModel model(sim, "esw", program, lowered, memory, inputs);

  // 3. Propositions: named predicates over the software state (SCTC reads
  //    the variables from the virtual memory model by address).
  sctc::TemporalChecker checker(sim, "sctc");
  const std::uint32_t counter_addr = program.find_global("counter")->address;
  const std::uint32_t done_addr = program.find_global("done")->address;
  checker.register_proposition("done", [&] {
    return memory.sctc_read_uint(done_addr) != 0;
  });
  checker.register_proposition("counter_in_range", [&] {
    return memory.sctc_read_uint(counter_addr) <= 10;
  });

  // 4. Properties: FLTL (or PSL via Dialect::kPsl). F[64] = "within 64
  //    statements".
  checker.add_property("terminates", "F[64] done");
  checker.add_property("bounded", "G counter_in_range");
  checker.bind_trigger(model.pc_event());

  // 5. Simulate and report.
  sim.run();
  std::cout << checker.report();

  // Bonus: the AR-automaton (IL representation) behind a property.
  temporal::FormulaFactory factory;
  temporal::FormulaRef f = temporal::parse_fltl("F[3] done", factory);
  std::cout << "\nIL dump of F[3] done:\n"
            << temporal::synthesize(factory, f).to_il(factory, "demo");
  return checker.any_violated() ? 1 : 0;
}

// The paper's central claim, demonstrated on one property: formal software
// model checkers fail on the industrial-scale program, while the
// simulation-based SCTC approaches complete.
//
// The same response property for EEE_Read is checked three ways:
//   1. predicate abstraction (BLAST role)  -> prover exception
//   2. bounded model checking (CBMC role)  -> unwinding budget exceeded
//   3. simulation with SCTC (approach 2)   -> completes, coverage measured
//
// Build & run:  ./build/examples/formal_vs_simulation
#include <cstdio>

#include "casestudy/harness.hpp"
#include "formal/absref/absref.hpp"
#include "formal/bmc/bmc.hpp"
#include "formal/bmc/spec.hpp"
#include "minic/sema.hpp"

int main() {
  using namespace esv;
  using namespace esv::casestudy;

  const OperationSpec& op = operation_by_name("Read");
  std::printf("property: %s\n\n",
              response_property(op, 10000).c_str());

  // The Spec-tool step: compile the property into a C-level monitor for the
  // formal back ends.
  const std::string instrumented = formal::instrument_response(
      eeprom_emulation_source(), op.op_code, op.ret_global, op.return_codes);

  // 1. BLAST role.
  {
    minic::Program program = minic::compile(instrumented);
    const auto r = formal::absref::check_assertions(program);
    std::printf("[predicate abstraction] %-24s (%.2fs) %s\n",
                to_string(r.status), r.seconds, r.detail.c_str());
  }

  // 2. CBMC role (unwind limit 20, constrained inputs, bounded effort).
  {
    minic::Program program = minic::compile(instrumented);
    formal::bmc::BmcOptions options;
    options.unwind = 20;
    options.max_gates = 2'000'000;
    options.input_ranges["op_select"] = {0, 6};
    options.input_ranges["rec_id"] = {0, 9};
    options.input_ranges["wdata"] = {0, 0xFFFF};
    options.input_ranges["inject_fault"] = {0, 1};
    const auto r = formal::bmc::check(program, options);
    std::printf("[bounded model checking] %-23s (%.2fs) %s\n",
                to_string(r.status), r.seconds, r.detail.c_str());
  }

  // 3. Simulation with SCTC (approach 2).
  {
    ExperimentConfig config;
    config.max_test_cases = 2000;
    config.time_bound = 10000;
    config.mode = sctc::MonitorMode::kSynthesizedAutomaton;
    const ExperimentResult r = run_with_esw_model(op, config);
    std::printf("[simulation + SCTC]      %-23s (%.2fs) %llu test cases, "
                "coverage %.0f%%\n",
                temporal::to_string(r.verdict), r.verification_seconds,
                static_cast<unsigned long long>(r.test_cases),
                r.coverage_percent);
    if (r.verdict == temporal::Verdict::kViolated) return 1;
  }

  std::printf("\nAs in the paper: only the simulation-based checker "
              "completes on the industrial software.\n");
  return 0;
}

// Window-lift controller with anti-pinch protection — a second automotive
// scenario, verified under the paper's 1st approach: the software runs on
// the microprocessor model and the SCTC triggers on the processor clock,
// reading the controller's state out of memory (EswMonitor handshake
// included).
//
// Safety requirements (from a typical door-module spec):
//   P1  never drive up while pinch protection has tripped
//   P2  a pinch event leads to the motor reversing (down) within a bounded
//       number of clock cycles
//   P3  the motor never drives past the end positions
//
// Build & run:  ./build/examples/window_lift
#include <fstream>
#include <iostream>

#include "cpu/codegen.hpp"
#include "cpu/cpu.hpp"
#include "minic/sema.hpp"
#include "sctc/esw_monitor.hpp"
#include "sim/vcd.hpp"
#include "stimulus/random_inputs.hpp"

int main() {
  using namespace esv;

  const char* source = R"(
    enum { MOTOR_OFF = 0, MOTOR_UP = 1, MOTOR_DOWN = 2 };
    enum { POS_BOTTOM = 0, POS_TOP = 100 };

    bool flag;          /* SCTC handshake */
    int motor;          /* current drive direction */
    int position;       /* window position 0..100 */
    int pinch_latch;    /* anti-pinch tripped, must reverse */
    int reverse_budget; /* cycles left to start reversing */
    int cycles;

    void drive(void) {
      if (motor == MOTOR_UP) {
        if (position < POS_TOP) { position = position + 1; }
      }
      if (motor == MOTOR_DOWN) {
        if (position > POS_BOTTOM) { position = position - 1; }
      }
    }

    void control(int request, int pinch) {
      if (pinch == 1) {
        if (motor == MOTOR_UP) {
          pinch_latch = 1;
          reverse_budget = 3;
        }
      }
      if (pinch_latch == 1) {
        motor = MOTOR_DOWN;     /* mandatory reversal */
        if (position == POS_BOTTOM) { pinch_latch = 0; }
      } else {
        if (request == 1) { motor = MOTOR_UP; }
        else if (request == 2) { motor = MOTOR_DOWN; }
        else { motor = MOTOR_OFF; }
      }
      if (motor != MOTOR_UP) { reverse_budget = 0; }
    }

    /* Committed (observable) state: snapshotted once per control cycle.
       Monitoring raw variables at clock granularity would see the transient
       instants *inside* control() where pinch_latch is already set but the
       motor command is not yet reversed — like probing combinational nets
       instead of registered outputs. */
    int obs_motor;
    int obs_position;
    int obs_latch;

    void commit(void) {
      obs_motor = motor;
      obs_position = position;
      obs_latch = pinch_latch;
    }

    void main(void) {
      motor = MOTOR_OFF;
      position = 50;
      pinch_latch = 0;
      commit();
      flag = true;       /* initialized: the monitor may attach now */
      while (1) {
        int request = __in(request);
        int pinch = __in(pinch);
        control(request, pinch);
        drive();
        commit();
        cycles = cycles + 1;
      }
    }
  )";

  minic::Program program = minic::compile(source);
  cpu::CodeImage image = cpu::compile_to_image(program);

  sim::Simulation sim;
  mem::AddressSpace memory(0x2000);
  stimulus::RandomInputProvider inputs(2026);
  inputs.set_weighted("request", {{0, 2}, {1, 5}, {2, 3}});  // mostly "up"
  inputs.set_chance("pinch", 5, 100);                        // 5% pinch events

  sim::Clock clock(sim, "clk", sim::Time::ns(10));
  cpu::Cpu core(sim, "cpu", image, memory, inputs, clock);

  const auto addr = [&](const char* name) {
    return program.find_global(name)->address;
  };

  sctc::EswMonitor monitor(
      sim, "door_module", clock.posedge_event(), memory, addr("flag"),
      [&](sctc::TemporalChecker& checker) {
        checker.register_proposition(
            "pinch_tripped", std::make_unique<sctc::MemoryWordProposition>(
                                 memory, addr("obs_latch"),
                                 sctc::Compare::kEq, 1));
        checker.register_proposition(
            "driving_up", std::make_unique<sctc::MemoryWordProposition>(
                              memory, addr("obs_motor"), sctc::Compare::kEq, 1));
        checker.register_proposition(
            "driving_down", std::make_unique<sctc::MemoryWordProposition>(
                                memory, addr("obs_motor"), sctc::Compare::kEq, 2));
        checker.register_proposition(
            "pos_legal", [&] {
              const auto p = static_cast<std::int32_t>(
                  memory.sctc_read_uint(addr("obs_position")));
              return p >= 0 && p <= 100;
            });
        // P1/P2/P3; the 200-cycle bound covers the statement-level latency
        // of one main-loop iteration on the processor.
        checker.add_property("P1_no_up_while_tripped",
                             "G (pinch_tripped -> !driving_up)");
        checker.add_property("P2_pinch_reverses",
                             "G (pinch_tripped -> F[200] driving_down)");
        checker.add_property("P3_position_legal", "G pos_legal");
      });

  // Waveform tracing: sample the observable state on every clock edge and
  // dump a GTKWave-compatible VCD next to the binary.
  sim::VcdTracer vcd(sim);
  vcd.add_u32("position", [&] { return memory.sctc_read_uint(addr("obs_position")); });
  vcd.add_u32("motor", [&] { return memory.sctc_read_uint(addr("obs_motor")); });
  vcd.add_bool("pinch_latch",
               [&] { return memory.sctc_read_uint(addr("obs_latch")) != 0; });
  vcd.sample_on(clock.posedge_event());

  // 50k clock cycles of constrained-random driving.
  sim.run(sim::Time::us(500));

  std::ofstream("window_lift.vcd") << vcd.str();
  std::cout << "waveform written to window_lift.vcd (" << vcd.samples()
            << " samples)\n";
  std::cout << monitor.checker().report();
  std::cout << (monitor.checker().any_violated()
                    ? "\nFAIL: a safety property was violated\n"
                    : "\nOK: no violation in 50k cycles (properties P1/P3 "
                      "stay pending forever by design; P2 re-arms per "
                      "pinch)\n");
  return monitor.checker().any_violated() ? 1 : 0;
}

// The automotive case study end to end: verify the EEPROM-emulation
// software's operation-response properties with both approaches and print a
// small Fig.-8-style comparison.
//
// Build & run:  ./build/examples/eeprom_verification [op ...]
//   default ops: Read Write
#include <cstdio>
#include <string>
#include <vector>

#include "casestudy/harness.hpp"

int main(int argc, char** argv) {
  using namespace esv;
  using namespace esv::casestudy;

  std::vector<std::string> ops;
  for (int i = 1; i < argc; ++i) ops.emplace_back(argv[i]);
  if (ops.empty()) ops = {"Read", "Write"};

  std::printf("EEPROM emulation case study — operation-response properties\n");
  std::printf("property shape: %s\n\n",
              response_property(operation_by_name(ops[0]), 1000).c_str());

  for (const std::string& name : ops) {
    const OperationSpec& op = operation_by_name(name);

    // Progression monitors keep AR-automaton generation out of the timing
    // so the run compares pure simulation speed; bench_fig8_approaches
    // additionally covers the synthesized-automaton columns.
    ExperimentConfig config;
    config.max_test_cases = 100;
    config.mode = sctc::MonitorMode::kProgression;
    config.time_bound = 10000;
    config.seed = 7;

    std::printf("--- %s ---\n", op.name.c_str());
    const ExperimentResult a1 = run_with_microprocessor(op, config);
    std::printf("approach 1 (microprocessor): %.3fs, %llu test cases, "
                "coverage %.0f%%, verdict %s\n",
                a1.verification_seconds,
                static_cast<unsigned long long>(a1.test_cases),
                a1.coverage_percent, temporal::to_string(a1.verdict));

    const ExperimentResult a2 = run_with_esw_model(op, config);
    std::printf("approach 2 (derived model):  %.3fs, %llu test cases, "
                "coverage %.0f%%, verdict %s (AR: %zu states, %.3fs)\n",
                a2.verification_seconds,
                static_cast<unsigned long long>(a2.test_cases),
                a2.coverage_percent, temporal::to_string(a2.verdict),
                a2.automaton_states, a2.ar_generation_seconds);

    if (a2.verification_seconds > 0) {
      std::printf("speedup: %.0fx\n\n",
                  a1.verification_seconds / a2.verification_seconds);
    }
    if (a1.verdict == temporal::Verdict::kViolated ||
        a2.verdict == temporal::Verdict::kViolated) {
      std::printf("UNEXPECTED violation — the shipped software is safe\n");
      return 1;
    }
  }
  return 0;
}

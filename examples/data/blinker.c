/* Sample program for esv-verify: a blinker driven by an enable input.
   Properties live in blinker.esv. */
enum { LED_OFF = 0, LED_ON = 1 };

bool flag;
int led;
int ticks_on;
int cycles;

void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) {
      led = LED_ON;
    } else {
      led = LED_OFF;
    }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) {
    ticks_on = ticks_on + 1;
  }
}

void main(void) {
  led = LED_OFF;
  ticks_on = 0;
  flag = true;
  while (cycles < 500) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
